"""Tests for the adversarial MDP and the attacker-training pipelines."""

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.core import (
    AttackEnv,
    CameraAttackObservation,
    ImuAttackObservation,
    InjectionChannel,
    InjectionChannelConfig,
    LearnedAttacker,
)
from repro.core.training import (
    AttackTrainConfig,
    collect_oracle_demonstrations,
    collect_teacher_traces,
    evaluate_attacker,
    train_camera_attacker,
    train_imu_attacker,
)
from repro.rl.bc import BcConfig
from repro.rl.policy import SquashedGaussianPolicy


def modular_victim(world):
    return ModularAgent(world.road)


@pytest.fixture()
def env():
    return AttackEnv(
        modular_victim,
        CameraAttackObservation(),
        budget=1.0,
        rng=np.random.default_rng(0),
    )


class TestAttackEnv:
    def test_reset_returns_observation(self, env):
        obs = env.reset()
        assert obs.shape == (env.observation_dim,)

    def test_step_before_reset_raises(self, env):
        with pytest.raises(RuntimeError):
            env.step(np.zeros(1))

    def test_step_contract(self, env):
        env.reset()
        obs, reward, done, info = env.step(np.array([0.0]))
        assert obs.shape == (env.observation_dim,)
        assert np.isfinite(reward)
        assert not done
        assert info["delta"] == 0.0
        assert info["collision"] is None

    def test_budget_respected(self):
        env = AttackEnv(
            modular_victim,
            CameraAttackObservation(),
            budget=0.3,
            rng=np.random.default_rng(0),
        )
        env.reset()
        _, _, _, info = env.step(np.array([1.0]))
        assert info["delta"] == pytest.approx(0.3)

    def test_episode_terminates(self, env):
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done, info = env.step(np.array([1.0]))
            steps += 1
            assert steps <= 200
        # Full-budget constant attack forces some collision well before
        # the horizon.
        assert info["collision"] is not None

    def test_lurking_full_episode_truncates(self, env):
        env.reset()
        done = False
        while not done:
            _, _, done, info = env.step(np.array([0.0]))
        assert info["collision"] is None
        assert info["truncated"]

    def test_teacher_term_present(self):
        sensor = CameraAttackObservation()
        teacher_policy = SquashedGaussianPolicy(
            sensor.observation_dim, 1, (8,), np.random.default_rng(1)
        )
        teacher = LearnedAttacker(
            teacher_policy,
            CameraAttackObservation(),
            channel=InjectionChannel(InjectionChannelConfig(budget=1.0)),
        )
        env = AttackEnv(
            modular_victim,
            ImuAttackObservation(),
            budget=1.0,
            rng=np.random.default_rng(2),
            teacher=teacher,
        )
        env.reset()
        _, _, _, info = env.step(np.array([0.9]))
        assert info["teacher_delta"] is not None
        assert info["breakdown"].teacher <= 0.0


class TestDatasets:
    def test_oracle_demonstrations_shapes(self):
        obs, actions = collect_oracle_demonstrations(
            modular_victim, n_episodes=1, rng=np.random.default_rng(0)
        )
        assert obs.ndim == 2
        assert actions.shape == (len(obs), 1)
        assert np.all(np.abs(actions) <= 1.0)

    def test_oracle_demonstrations_contain_attacks(self):
        obs, actions = collect_oracle_demonstrations(
            modular_victim, n_episodes=2, rng=np.random.default_rng(0)
        )
        assert np.any(actions != 0.0)
        assert np.any(actions == 0.0)  # lurk phase present

    def test_teacher_traces_shapes(self):
        sensor = CameraAttackObservation()
        policy = SquashedGaussianPolicy(
            sensor.observation_dim, 1, (8,), np.random.default_rng(3)
        )
        teacher = LearnedAttacker(policy, sensor)
        obs, actions = collect_teacher_traces(
            teacher, modular_victim, n_episodes=1, rng=np.random.default_rng(0)
        )
        assert obs.shape[1] == ImuAttackObservation().observation_dim
        assert actions.shape == (len(obs), 1)


@pytest.fixture(scope="module")
def tiny_config():
    return AttackTrainConfig(
        bc_episodes=2,
        bc=BcConfig(epochs=2),
        sac_steps=0,
        bc_restarts=1,
        eval_episodes=2,
    )


class TestTrainingPipelines:
    def test_train_camera_attacker_smoke(self, tiny_config):
        attacker, metrics = train_camera_attacker(modular_victim, tiny_config)
        assert attacker.name == "camera"
        assert "success_rate" in metrics
        assert attacker.budget == 1.0

    def test_train_imu_attacker_smoke(self, tiny_config):
        sensor = CameraAttackObservation()
        teacher_policy = SquashedGaussianPolicy(
            sensor.observation_dim, 1, (8,), np.random.default_rng(4)
        )
        teacher = LearnedAttacker(teacher_policy, sensor)
        attacker, metrics = train_imu_attacker(
            teacher, modular_victim, tiny_config
        )
        assert isinstance(attacker.sensor, ImuAttackObservation)
        assert "mean_adversarial_return" in metrics

    def test_evaluate_attacker_metrics(self, tiny_config):
        sensor = CameraAttackObservation()
        policy = SquashedGaussianPolicy(
            sensor.observation_dim, 1, (8,), np.random.default_rng(5)
        )
        attacker = LearnedAttacker(policy, sensor)
        metrics = evaluate_attacker(attacker, modular_victim, n_episodes=2)
        assert set(metrics) == {
            "success_rate",
            "mean_adversarial_return",
            "mean_nominal_return",
        }
        assert 0.0 <= metrics["success_rate"] <= 1.0
