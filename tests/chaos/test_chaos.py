"""Chaos suite: real crashes against real training subprocesses.

Each test launches ``tests/chaos/_driver.py`` in a subprocess with a
deterministic fault plan in ``REPRO_FAULTS`` and asserts the advertised
recovery story: SIGKILL mid-training resumes bit-identically, a torn
checkpoint falls back to the previous snapshot, NaN gradients halt with
an emergency snapshot, and a full disk degrades to a warning.

Excluded from tier-1 runs; opt in with ``REPRO_CHAOS=1`` or ``-m chaos``.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.rl.checkpoint import load_state

pytestmark = pytest.mark.chaos

DRIVER = Path(__file__).with_name("_driver.py")
REPO = DRIVER.parents[2]
STEPS = 90
# Episode boundaries fall at steps 25/50/75 (SCENARIO.max_steps=25);
# every=20 makes each of them snapshot-due, so a kill at 61 leaves two
# snapshots behind and the disk-full test has a "previous" to survive.
EVERY = 20
KILL_AT = 61


def run_driver(loop, ckpt_dir, *, fault="", resume=False, halt=False,
               steps=STEPS, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_CHECKPOINT_EVERY", None)
    env.pop("REPRO_RESUME", None)
    if fault:
        env["REPRO_FAULTS"] = fault
    else:
        env.pop("REPRO_FAULTS", None)
    cmd = [
        sys.executable, str(DRIVER), "--loop", loop,
        "--steps", str(steps), "--every", str(EVERY),
        "--ckpt-dir", str(ckpt_dir),
    ]
    if resume:
        cmd.append("--resume")
    if halt:
        cmd.append("--halt-on-alert")
    return subprocess.run(
        cmd, env=env, capture_output=True, text=True, timeout=timeout
    )


def final_state(ckpt_dir, loop_label):
    snaps = sorted(Path(ckpt_dir, loop_label).glob("state_step*.npz"))
    assert snaps, f"no snapshots under {ckpt_dir}/{loop_label}"
    state = load_state(snaps[-1])
    assert state.final and state.step == STEPS
    return state


def assert_bit_identical(a, b):
    assert a.counters() == b.counters()
    assert a.rng_state == b.rng_state
    assert set(a.arrays) == set(b.arrays)
    for key in a.arrays:
        np.testing.assert_array_equal(a.arrays[key], b.arrays[key], err_msg=key)


class TestSigkillResume:
    @pytest.mark.parametrize(
        "loop,label", [("attack", "sac-attack"), ("driver", "sac-driver")]
    )
    def test_kill_then_resume_is_bit_identical(self, tmp_path, loop, label):
        control = run_driver(loop, tmp_path / "control")
        assert control.returncode == 0, control.stderr
        assert "DONE" in control.stdout

        crashed_dir = tmp_path / "crashed"
        crashed = run_driver(
            loop, crashed_dir, fault=f"kill@step={KILL_AT},loop={label}"
        )
        assert crashed.returncode == -signal.SIGKILL
        snaps = sorted(Path(crashed_dir, label).glob("state_step*.npz"))
        assert snaps, "SIGKILL left no snapshot to resume from"
        assert all(int(p.name[10:18]) <= KILL_AT for p in snaps)

        resumed = run_driver(loop, crashed_dir, resume=True)
        assert resumed.returncode == 0, resumed.stderr
        assert_bit_identical(
            final_state(tmp_path / "control", label),
            final_state(crashed_dir, label),
        )


class TestTornCheckpoint:
    def test_truncated_newest_snapshot_falls_back(self, tmp_path):
        label = "sac-attack"
        control = run_driver("attack", tmp_path / "control")
        assert control.returncode == 0, control.stderr

        crashed_dir = tmp_path / "crashed"
        crashed = run_driver(
            "attack", crashed_dir, fault=f"kill@step={KILL_AT},loop={label}"
        )
        assert crashed.returncode == -signal.SIGKILL
        snaps = sorted(Path(crashed_dir, label).glob("state_step*.npz"))
        assert len(snaps) >= 2, "need two snapshots to exercise fallback"
        faults.truncate_tail(snaps[-1], drop_bytes=256)

        resumed = run_driver("attack", crashed_dir, resume=True)
        assert resumed.returncode == 0, resumed.stderr
        # Fallback replays more steps but lands on the same trajectory.
        assert_bit_identical(
            final_state(tmp_path / "control", label),
            final_state(crashed_dir, label),
        )


class TestNanHalt:
    def test_nan_grads_halt_with_emergency_snapshot(self, tmp_path):
        result = run_driver(
            "attack", tmp_path, fault="nan_grads@update=3", halt=True
        )
        assert result.returncode == 3, result.stderr
        line = next(
            l for l in result.stdout.splitlines() if l.startswith("HALTED")
        )
        _, rule, ckpt = line.split(maxsplit=2)
        assert rule == "nan_loss"
        assert Path(ckpt).exists()
        assert Path(ckpt).name.startswith("state_alert_")


class TestDiskFull:
    def test_enospc_degrades_and_previous_snapshot_survives(self, tmp_path):
        label = "sac-attack"
        result = run_driver("attack", tmp_path, fault="enospc@save=1,count=1")
        assert result.returncode == 0, result.stderr
        assert "DONE" in result.stdout
        for snap in sorted(Path(tmp_path, label).glob("state_step*.npz")):
            load_state(snap)  # every surviving snapshot is intact
        assert final_state(tmp_path, label).step == STEPS
