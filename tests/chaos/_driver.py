"""Subprocess entry point for the chaos suite.

Runs one SAC training loop end-to-end with crash-safety options taken
from the command line; fault injection arrives via ``REPRO_FAULTS`` in
the environment. Invoked by ``tests/chaos/test_chaos.py`` as::

    PYTHONPATH=src python tests/chaos/_driver.py --loop attack \
        --steps 90 --every 30 --ckpt-dir /tmp/ckpt [--resume]

Prints ``DONE`` on normal completion. A watchdog halt exits with code 3
after printing ``HALTED <rule> <checkpoint-path>``.
"""

import argparse
import sys

import numpy as np

from repro.rl.checkpoint import TrainingHalted
from repro.rl.policy import SquashedGaussianPolicy
from repro.rl.sac import SacConfig
from repro.sim.config import ScenarioConfig
from repro.telemetry.trace import TraceWriter

SCENARIO = ScenarioConfig(max_steps=25)


def tiny_sac(args) -> SacConfig:
    return SacConfig(
        hidden=(16, 16),
        batch_size=16,
        buffer_capacity=2_000,
        start_steps=0,
        update_every=4,
        checkpoint_every=args.every,
        checkpoint_dir=args.ckpt_dir,
        checkpoint_keep=10,
        resume=args.resume,
        halt_on_alert=args.halt_on_alert,
    )


def run_attack(args) -> None:
    from repro.agents.modular import ModularAgent
    from repro.core import CameraAttackObservation
    from repro.core.attack_env import AttackEnv
    from repro.core.training import AttackTrainConfig, _sac_refine

    rng = np.random.default_rng(42)
    env = AttackEnv(
        lambda w: ModularAgent(w.road),
        CameraAttackObservation(),
        budget=1.0,
        scenario=SCENARIO,
        rng=rng,
    )
    policy = SquashedGaussianPolicy(
        env.observation_dim, 1, (16, 16), np.random.default_rng(2)
    )
    config = AttackTrainConfig(sac_steps=args.steps)
    config.sac = tiny_sac(args)
    _sac_refine(policy, env, config, rng, trace=TraceWriter())


def run_driver(args) -> None:
    from repro.agents.e2e.observation import DrivingObservation
    from repro.agents.e2e.training import DriverTrainConfig, refine_driver_sac

    rng = np.random.default_rng(42)
    policy = SquashedGaussianPolicy(
        DrivingObservation().observation_dim, 2, (16, 16),
        np.random.default_rng(2),
    )
    config = DriverTrainConfig(sac_steps=args.steps, eval_episodes=1)
    config.sac = tiny_sac(args)
    refine_driver_sac(policy, config, rng, trace=TraceWriter(), scenario=SCENARIO)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loop", choices=("attack", "driver"), required=True)
    parser.add_argument("--steps", type=int, default=90)
    parser.add_argument("--every", type=int, default=30)
    parser.add_argument("--ckpt-dir", required=True)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--halt-on-alert", action="store_true")
    args = parser.parse_args()
    try:
        {"attack": run_attack, "driver": run_driver}[args.loop](args)
    except TrainingHalted as halt:
        print(f"HALTED {halt.alert.rule} {halt.checkpoint}")
        return 3
    print("DONE")
    return 0


if __name__ == "__main__":
    sys.exit(main())
