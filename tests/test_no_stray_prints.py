"""Library code must use the structured telemetry logger, not ``print``.

``src/repro`` is a library: anything it wants to tell an operator goes
through :mod:`repro.telemetry.log` (machine-parseable, level-filtered,
redirectable), and the few legitimately human-facing surfaces (the obsv
CLI renderers, experiment tables) write to ``sys.stdout`` explicitly.
Example scripts under ``examples/`` are exempt — printing is their job.
"""

import re
from pathlib import Path

import pytest

pytestmark = pytest.mark.telemetry

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: CLI output surfaces allowed to talk to the terminal directly. They
#: still must not use print() — sys.stdout.write keeps them explicit —
#: but are listed here so a future, deliberate exemption is one edit.
ALLOWED: frozenset[str] = frozenset()

_PRINT = re.compile(r"(?<![\w.\"'])print\(")


def test_no_print_calls_in_library_code():
    assert SRC.is_dir(), SRC
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _PRINT.search(line):
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "print() in library code — use repro.telemetry.log instead:\n"
        + "\n".join(offenders)
    )
