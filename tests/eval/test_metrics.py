"""Tests for aggregate metrics: box stats, success rates, effort windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.episodes import EpisodeResult
from repro.eval.metrics import (
    HUMAN_REACTION_TIME,
    BoxStats,
    adversarial_reward_stats,
    collision_rate,
    effort_windows,
    mean_deviation_rmse,
    nominal_reward_stats,
    reward_reduction,
    success_rate,
    time_to_collision_stats,
)
from repro.sim.collision import Collision, CollisionKind


def make_result(
    nominal=100.0,
    adversarial=0.0,
    side=False,
    collided=False,
    effort=0.0,
    ttc=None,
    deviation=0.02,
):
    collision = None
    if collided or side:
        collision = Collision(
            kind=CollisionKind.SIDE if side else CollisionKind.FRONT,
            ego="ego",
            other="npc_0",
            step=40,
            time=4.0,
        )
    return EpisodeResult(
        steps=40 if collision else 180,
        duration=4.0 if collision else 18.0,
        collision=collision,
        passed_npcs=6,
        nominal_return=nominal,
        adversarial_return=adversarial,
        mean_effort=effort,
        deviation_rmse=deviation,
        deviation_max=deviation * 3.0,
        time_to_collision=ttc,
    )


class TestBoxStats:
    def test_from_values(self):
        stats = BoxStats.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.mean == 3.0
        assert stats.median == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.q1 == 2.0
        assert stats.q3 == 4.0

    def test_empty_yields_nan_stats(self):
        stats = BoxStats.from_values([])
        for value in (stats.mean, stats.median, stats.q1, stats.q3,
                      stats.minimum, stats.maximum):
            assert np.isnan(value)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_invariants(self, values):
        stats = BoxStats.from_values(values)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3
        assert stats.q3 <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum


class TestRates:
    def test_success_rate(self):
        results = [make_result(side=True), make_result(), make_result()]
        assert success_rate(results) == pytest.approx(1.0 / 3.0)

    def test_collision_rate_counts_all_kinds(self):
        results = [make_result(side=True), make_result(collided=True), make_result()]
        assert collision_rate(results) == pytest.approx(2.0 / 3.0)

    def test_empty_is_zero(self):
        assert success_rate([]) == 0.0
        assert collision_rate([]) == 0.0


class TestRewardAggregates:
    def test_nominal_and_adversarial_stats(self):
        results = [make_result(nominal=10.0, adversarial=-1.0),
                   make_result(nominal=20.0, adversarial=3.0)]
        assert nominal_reward_stats(results).mean == 15.0
        assert adversarial_reward_stats(results).mean == 1.0

    def test_reward_reduction(self):
        nominal = [make_result(nominal=100.0)]
        attacked = [make_result(nominal=16.0)]
        assert reward_reduction(nominal, attacked) == pytest.approx(0.84)

    def test_reward_reduction_zero_baseline(self):
        with pytest.raises(ValueError):
            reward_reduction([make_result(nominal=0.0)], [make_result()])

    def test_mean_deviation(self):
        results = [make_result(deviation=0.02), make_result(deviation=0.04)]
        assert mean_deviation_rmse(results) == pytest.approx(0.03)

    def test_mean_deviation_empty_is_nan(self):
        assert np.isnan(mean_deviation_rmse([]))


class TestTimeToCollision:
    def test_only_successful_counted(self):
        results = [
            make_result(side=True, ttc=0.8),
            make_result(side=True, ttc=1.2),
            make_result(collided=True, ttc=0.1),  # not a side collision
            make_result(),
        ]
        stats = time_to_collision_stats(results)
        assert stats.count == 2
        assert stats.mean == pytest.approx(1.0)
        assert stats.minimum == pytest.approx(0.8)

    def test_none_when_no_successes(self):
        assert time_to_collision_stats([make_result()]) is None

    def test_beats_human_reaction(self):
        fast = time_to_collision_stats([make_result(side=True, ttc=0.9)])
        slow = time_to_collision_stats([make_result(side=True, ttc=2.0)])
        assert fast.beats_human_reaction
        assert not slow.beats_human_reaction
        assert HUMAN_REACTION_TIME == 1.25


class TestEffortWindows:
    def test_window_labels(self):
        rows = effort_windows([make_result(effort=0.1)])
        labels = [label for label, _, _ in rows]
        assert labels == [
            "[0.0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "0.8+",
        ]

    def test_rates_per_window(self):
        results = [
            make_result(effort=0.1, side=True),
            make_result(effort=0.15),
            make_result(effort=0.5, side=True),
            make_result(effort=0.95, side=True),
        ]
        rows = dict(
            (label, (rate, n)) for label, rate, n in effort_windows(results)
        )
        assert rows["[0.0,0.2)"] == (0.5, 2)
        assert rows["[0.4,0.6)"] == (1.0, 1)
        assert rows["0.8+"] == (1.0, 1)
        assert rows["[0.2,0.4)"] == (0.0, 0)

    def test_last_window_open_ended(self):
        results = [make_result(effort=5.0, side=True)]
        rows = dict(
            (label, n) for label, _, n in effort_windows(results)
        )
        assert rows["0.8+"] == 1

    def test_empty_results_give_all_zero_windows(self):
        rows = effort_windows([])
        assert len(rows) == 5
        assert all(rate == 0.0 and n == 0 for _, rate, n in rows)

    def test_custom_window_and_upper(self):
        results = [
            make_result(effort=0.3, side=True),
            make_result(effort=0.6),
        ]
        rows = effort_windows(results, window=0.5, upper=0.5)
        assert [label for label, _, _ in rows] == ["[0.0,0.5)", "0.5+"]
        assert rows[0][1:] == (1.0, 1)
        assert rows[1][1:] == (0.0, 1)

    def test_boundary_effort_lands_in_upper_window(self):
        # Exactly on a window edge: half-open intervals put it above.
        rows = dict(
            (label, n) for label, _, n in
            effort_windows([make_result(effort=0.4)])
        )
        assert rows["[0.4,0.6)"] == 1
        assert rows["[0.2,0.4)"] == 0

    def test_window_rates_weighted_by_membership_not_order(self):
        results = [
            make_result(effort=0.45, side=True),
            make_result(effort=0.55),
            make_result(effort=0.50, side=True),
        ]
        rows = dict(
            (label, (rate, n)) for label, rate, n in effort_windows(results)
        )
        assert rows["[0.4,0.6)"] == (pytest.approx(2.0 / 3.0), 3)


class TestTimeToCollisionDirect:
    """Direct coverage of time_to_collision_stats edge cases."""

    def test_missing_ttc_on_success_is_skipped(self):
        # A successful attack whose ttc was never dated (no strike seen)
        # must not poison the aggregate.
        results = [
            make_result(side=True, ttc=None),
            make_result(side=True, ttc=0.5),
        ]
        stats = time_to_collision_stats(results)
        assert stats.count == 1
        assert stats.mean == pytest.approx(0.5)

    def test_empty_results_give_none(self):
        assert time_to_collision_stats([]) is None

    def test_minimum_not_greater_than_mean(self):
        stats = time_to_collision_stats(
            [make_result(side=True, ttc=t) for t in (0.4, 0.9, 1.6)]
        )
        assert stats.minimum <= stats.mean
        assert stats.count == 3
