"""Scalar vs batch engine equivalence: the contract behind the speedup.

Every configuration the paper evaluates — nominal and attacked, modular
and end-to-end — must produce the same episodes whether run through
:func:`repro.eval.run_episode` or in lockstep through
:func:`repro.eval.run_episode_batch`. Discrete outcomes (steps,
collisions, passed NPCs) must match exactly; floats must match within
the replay tolerances of :mod:`repro.obsv.replay`, whose diff machinery
does the tick-by-tick comparison here.
"""

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.core import OracleAttacker
from repro.eval import run_episode, run_episode_batch, run_episodes
from repro.experiments import registry
from repro.obsv.replay import DEFAULT_TOLERANCES, diff_ticks
from repro.telemetry.trace import TraceWriter

pytestmark = pytest.mark.batch

SEEDS = [3, 7, 19, 31]

needs_artifacts = pytest.mark.skipif(
    not (
        registry.has_artifact(registry.E2E_DRIVER)
        and registry.has_artifact(registry.CAMERA_ATTACKER_E2E)
    ),
    reason="shipped artifacts missing; run examples/train_all.py",
)


def modular_victim(world):
    return ModularAgent(world.road)


def _ticks_by_episode(writer: TraceWriter) -> dict:
    ticks: dict = {}
    for event in writer.events:
        if event["event"] == "tick":
            ticks.setdefault(event["episode"], []).append(event)
    return ticks


def assert_equivalent(victim_factory, attacker_factory, seeds=SEEDS):
    scalar_writer = TraceWriter()
    scalar = [
        run_episode(
            victim_factory,
            attacker=attacker_factory(),
            seed=seed,
            trace=scalar_writer,
        )
        for seed in seeds
    ]
    batch_writer = TraceWriter()
    batched = run_episode_batch(
        victim_factory,
        attacker=attacker_factory(),
        seeds=seeds,
        trace=batch_writer,
    )

    assert len(batched) == len(scalar)
    for seed, a, b in zip(seeds, scalar, batched):
        # Discrete outcomes: exact.
        assert b.steps == a.steps, f"seed {seed}"
        assert b.passed_npcs == a.passed_npcs, f"seed {seed}"
        assert (b.collision is None) == (a.collision is None), f"seed {seed}"
        if a.collision is not None:
            assert b.collision.kind is a.collision.kind
            assert b.collision.other == a.collision.other
            assert b.collision.step == a.collision.step
        # Aggregates: replay tolerance.
        for fld in (
            "duration",
            "nominal_return",
            "adversarial_return",
            "mean_effort",
            "deviation_rmse",
            "deviation_max",
        ):
            assert getattr(b, fld) == pytest.approx(
                getattr(a, fld), abs=1e-9
            ), f"seed {seed}: {fld}"
        if a.time_to_collision is None:
            assert b.time_to_collision is None
        else:
            assert b.time_to_collision == pytest.approx(
                a.time_to_collision, abs=1e-9
            )

    # Tick-by-tick through the replay diff machinery.
    scalar_ticks = _ticks_by_episode(scalar_writer)
    batch_ticks = _ticks_by_episode(batch_writer)
    for seed in seeds:
        assert len(batch_ticks[seed]) == len(scalar_ticks[seed])
        diffs, _, compared = diff_ticks(
            scalar_ticks[seed], batch_ticks[seed], DEFAULT_TOLERANCES
        )
        assert compared > 0
        assert not diffs, f"seed {seed}: {[str(d) for d in diffs[:5]]}"
    return scalar, batched


class TestModularEquivalence:
    def test_nominal(self):
        assert_equivalent(modular_victim, lambda: None)

    def test_oracle_attacked(self):
        scalar, _ = assert_equivalent(
            modular_victim, lambda: OracleAttacker(budget=1.0)
        )
        # The sweep must actually exercise the attacked regime.
        assert any(r.collision is not None for r in scalar)


@needs_artifacts
class TestEndToEndEquivalence:
    def test_nominal(self):
        assert_equivalent(registry.e2e_victim, lambda: None, seeds=SEEDS[:2])

    def test_camera_attacked(self):
        scalar, _ = assert_equivalent(
            registry.e2e_victim,
            lambda: registry.camera_attacker(0.7, victim="e2e"),
            seeds=SEEDS[:2],
        )
        assert any(r.collision is not None for r in scalar)


class TestRunEpisodesBatchRouting:
    def test_batch_size_routes_and_matches_scalar(self):
        scalar = run_episodes(modular_victim, n_episodes=5, seed=3)
        batched = run_episodes(
            modular_victim, n_episodes=5, seed=3, batch_size=2
        )
        for a, b in zip(scalar, batched):
            assert a.steps == b.steps
            assert a.nominal_return == pytest.approx(
                b.nominal_return, abs=1e-9
            )

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_BATCH", "3")
        scalar = run_episodes(modular_victim, n_episodes=3, seed=11)
        monkeypatch.delenv("REPRO_EVAL_BATCH")
        reference = run_episodes(modular_victim, n_episodes=3, seed=11)
        for a, b in zip(scalar, reference):
            assert a.steps == b.steps

    def test_unsupported_victim_falls_back_to_scalar(self):
        # No batched twin -> TypeError inside the batch route -> scalar.
        results = run_episodes(
            lambda world: _OddVictim(world),
            n_episodes=2,
            seed=0,
            batch_size=2,
        )
        assert len(results) == 2
        reference = run_episodes(
            lambda world: _OddVictim(world), n_episodes=2, seed=0
        )
        for a, b in zip(results, reference):
            assert a.steps == b.steps


class _OddVictim:
    """A custom agent with no batched twin (exercises the fallback)."""

    name = "odd"

    def __init__(self, world):
        self._inner = ModularAgent(world.road)

    def reset(self, world):
        self._inner.reset(world)

    def act(self, world):
        return self._inner.act(world)
