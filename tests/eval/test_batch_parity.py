"""Batch-path telemetry parity: spans, counters, provenance.

The vectorized runner must leave the same observability footprint as N
scalar episodes: identical counter increments, a provenance stamp, and
per-episode span attribution under ``episode_batch`` so profiles built
from batched runs still show per-episode cost.
"""

import pytest

from repro.agents.modular import ModularAgent
from repro.eval import run_episode, run_episode_batch
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer
from repro.telemetry.trace import TraceWriter

pytestmark = pytest.mark.batch

SEEDS = [0, 1, 2]


def modular_victim(world):
    return ModularAgent(world.road)


@pytest.fixture()
def registry():
    registry = get_registry()
    registry.reset()
    try:
        yield registry
    finally:
        registry.reset()


@pytest.fixture()
def tracer():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    try:
        yield tracer
    finally:
        tracer.reset()
        if not was_enabled:
            tracer.disable()


class TestCounterParity:
    def test_batch_increments_match_scalar(self, registry):
        for seed in SEEDS:
            run_episode(modular_victim, seed=seed, trace=None)
        scalar = registry.snapshot()

        registry.reset()
        run_episode_batch(modular_victim, seeds=SEEDS, trace=None)
        batched = registry.snapshot()
        assert batched["counters"] == scalar["counters"]
        assert batched["counters"]["episodes_total"] == len(SEEDS)
        # Histogram observation counts match too (values are proven
        # equivalent by the dedicated batch-equivalence suite).
        assert {k: v["count"] for k, v in batched["histograms"].items()} == {
            k: v["count"] for k, v in scalar["histograms"].items()
        }


class TestSpanAttribution:
    def test_per_episode_spans_under_episode_batch(self, tracer):
        run_episode_batch(modular_victim, seeds=SEEDS, trace=None)
        snapshot = tracer.snapshot()
        batch_paths = [p for p in snapshot if p.endswith("episode_batch")]
        assert len(batch_paths) == 1
        batch_path = batch_paths[0]
        episode_path = f"{batch_path}/episode"
        assert snapshot[episode_path]["count"] == len(SEEDS)
        # The attributed shares cover the whole batch wall-clock.
        assert snapshot[episode_path]["total_s"] == pytest.approx(
            snapshot[batch_path]["total_s"], rel=0.05
        )
        # No double parent credit: the batch span keeps nonzero self time
        # (its ticks already credit child_total; the attribution must not).
        assert snapshot[batch_path]["total_s"] > 0

    def test_scalar_episode_span_still_present(self, tracer):
        run_episode(modular_victim, seed=0, trace=None)
        snapshot = tracer.snapshot()
        assert any(p.endswith("episode") for p in snapshot)

    def test_disabled_tracer_records_nothing(self, tracer):
        tracer.disable()
        run_episode_batch(modular_victim, seeds=SEEDS, trace=None)
        assert tracer.snapshot() == {}


class TestTraceParity:
    def test_batch_trace_event_kinds_match_scalar(self):
        scalar_writer = TraceWriter(None)
        for seed in SEEDS:
            run_episode(
                modular_victim, seed=seed,
                trace=scalar_writer, episode_id=seed,
            )
        batch_writer = TraceWriter(None)
        run_episode_batch(modular_victim, seeds=SEEDS, trace=batch_writer)

        def kind_counts(writer):
            counts: dict = {}
            for event in writer.events:
                counts[event["event"]] = counts.get(event["event"], 0) + 1
            return counts

        assert kind_counts(batch_writer) == kind_counts(scalar_writer)

    def test_batch_stamps_provenance_once_before_episodes(self):
        writer = TraceWriter(None)
        run_episode_batch(modular_victim, seeds=SEEDS, trace=writer)
        kinds = [e["event"] for e in writer.events]
        assert kinds[0] == "provenance"
        assert kinds.count("provenance") == 1
        assert kinds.count("episode_start") == len(SEEDS)
