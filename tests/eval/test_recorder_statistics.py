"""Tests for trajectory recording and the statistics helpers."""

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.core import OracleAttacker
from repro.eval import (
    Trajectory,
    bootstrap_mean_ci,
    compare_nominal_rewards,
    mann_whitney,
    record_episode,
    run_episodes,
    success_rate_ci,
)
from repro.sim import Control, make_world


def modular_victim(world):
    return ModularAgent(world.road)


class TestTrajectory:
    def test_record_and_lengths(self, quiet_world):
        trajectory = Trajectory()
        trajectory.record(quiet_world)
        quiet_world.tick(Control())
        trajectory.record(quiet_world, delta=0.3)
        assert len(trajectory) == 2
        assert trajectory.deltas == [0.0, 0.3]

    def test_actor_positions(self, quiet_world):
        trajectory = Trajectory()
        trajectory.record(quiet_world)
        ego = trajectory.actor("ego")
        assert ego.shape == (1, 2)
        with pytest.raises(KeyError):
            trajectory.actor("ghost")

    def test_csv_export(self, quiet_world):
        trajectory = Trajectory()
        trajectory.record(quiet_world)
        csv = trajectory.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "time,actor,x,y,yaw,speed,delta"
        assert len(lines) == 1 + 1 + len(quiet_world.npcs)

    def test_ascii_render(self, quiet_world):
        trajectory = Trajectory()
        for _ in range(20):
            quiet_world.tick(Control(thrust=-0.3))
            trajectory.record(quiet_world)
        art = trajectory.render_ascii(width=60)
        assert "E" in art
        assert art.count("\n") > 10

    def test_empty_render(self):
        assert "empty" in Trajectory().render_ascii()

    def test_positions_single_pass_matches_actor(self, quiet_world):
        trajectory = Trajectory()
        for _ in range(5):
            quiet_world.tick(Control())
            trajectory.record(quiet_world)
        positions = trajectory.positions()
        assert set(positions) == {"ego"} | {
            npc.vehicle.name for npc in quiet_world.npcs
        }
        for name, array in positions.items():
            assert array.shape == (5, 2)
            np.testing.assert_array_equal(array, trajectory.actor(name))

    def test_positions_cache_invalidates_on_record(self, quiet_world):
        trajectory = Trajectory()
        trajectory.record(quiet_world)
        first = trajectory.positions()
        assert trajectory.positions() is first  # cached
        quiet_world.tick(Control())
        trajectory.record(quiet_world)
        assert trajectory.actor("ego").shape == (2, 2)  # recomputed

    def test_jsonl_roundtrip(self, quiet_world):
        trajectory = Trajectory()
        for delta in (0.0, 0.25, -0.5):
            quiet_world.tick(Control())
            trajectory.record(quiet_world, delta=delta)
        rebuilt = Trajectory.from_jsonl(trajectory.to_jsonl())
        assert rebuilt.times == trajectory.times
        assert rebuilt.deltas == trajectory.deltas
        assert rebuilt.samples == trajectory.samples
        assert rebuilt.to_jsonl() == trajectory.to_jsonl()

    def test_jsonl_empty(self):
        assert Trajectory().to_jsonl() == ""
        assert len(Trajectory.from_jsonl("")) == 0


class TestRecordEpisode:
    def test_records_full_episode(self):
        trajectory, world = record_episode(modular_victim, seed=1)
        assert len(trajectory) == world.step_count + 1
        assert world.done

    def test_attack_deltas_recorded(self):
        trajectory, world = record_episode(
            modular_victim, attacker=OracleAttacker(budget=1.0), seed=1
        )
        assert any(abs(d) > 0.5 for d in trajectory.deltas)


class TestMannWhitney:
    def test_detects_clear_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, 40)
        b = rng.normal(3.0, 1.0, 40)
        comparison = mann_whitney(a, b)
        assert comparison.significant
        assert comparison.mean_b > comparison.mean_a

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 1.0, 40)
        b = rng.normal(0.0, 1.0, 40)
        assert not mann_whitney(a, b).significant

    def test_identical_constant_samples(self):
        comparison = mann_whitney([2.0, 2.0], [2.0, 2.0])
        assert comparison.p_value == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mann_whitney([], [1.0])

    def test_compare_nominal_rewards(self):
        nominal = run_episodes(modular_victim, None, n_episodes=3, seed=0)
        attacked = run_episodes(
            modular_victim,
            lambda: OracleAttacker(budget=1.0),
            n_episodes=3,
            seed=0,
        )
        comparison = compare_nominal_rewards(nominal, attacked)
        assert comparison.mean_a > comparison.mean_b


class TestBootstrapAndWilson:
    def test_bootstrap_ci_contains_mean(self):
        values = np.random.default_rng(2).normal(5.0, 1.0, 50)
        mean, low, high = bootstrap_mean_ci(values)
        assert low <= mean <= high
        assert high - low < 1.5

    def test_bootstrap_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_wilson_interval_bounds(self):
        results = run_episodes(
            modular_victim,
            lambda: OracleAttacker(budget=1.0),
            n_episodes=4,
            seed=0,
        )
        rate, low, high = success_rate_ci(results)
        assert 0.0 <= low <= rate <= high <= 1.0

    def test_wilson_empty_raises(self):
        with pytest.raises(ValueError):
            success_rate_ci([])
