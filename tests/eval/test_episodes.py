"""Tests for the canonical episode runner."""

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.core import OracleAttacker
from repro.eval import EpisodeResult, run_episode, run_episodes
from repro.sim import ScenarioConfig


def modular_victim(world):
    return ModularAgent(world.road)


class TestRunEpisode:
    def test_nominal_episode_metrics(self):
        result = run_episode(modular_victim, seed=3)
        assert result.steps == 180
        assert result.collision is None
        assert result.passed_npcs == 6
        assert result.nominal_return > 120.0
        assert result.adversarial_return < 5.0
        assert result.mean_effort == 0.0
        assert result.time_to_collision is None
        assert not result.attack_successful
        assert result.deviation_rmse < 0.05

    def test_attacked_episode_metrics(self):
        result = run_episode(
            modular_victim, attacker=OracleAttacker(budget=1.0), seed=3
        )
        assert result.collision is not None
        assert result.mean_effort > 0.5
        assert result.nominal_return < 60.0
        if result.attack_successful:
            assert result.adversarial_return > 0.0
            assert result.time_to_collision is not None
            assert result.time_to_collision > 0.0

    def test_same_seed_is_deterministic(self):
        a = run_episode(modular_victim, seed=11)
        b = run_episode(modular_victim, seed=11)
        assert a.nominal_return == pytest.approx(b.nominal_return)
        assert a.deviation_rmse == pytest.approx(b.deviation_rmse)

    def test_different_seeds_differ(self):
        a = run_episode(modular_victim, seed=11)
        b = run_episode(modular_victim, seed=12)
        assert a.nominal_return != b.nominal_return

    def test_scenario_override(self):
        result = run_episode(
            modular_victim, seed=0, scenario=ScenarioConfig(max_steps=10)
        )
        assert result.steps == 10


class TestRunEpisodes:
    def test_count_and_seeding(self):
        results = run_episodes(modular_victim, None, n_episodes=3, seed=5)
        assert len(results) == 3
        singles = [run_episode(modular_victim, seed=5 + i) for i in range(3)]
        for batch, single in zip(results, singles):
            assert batch.nominal_return == pytest.approx(single.nominal_return)

    def test_attacker_factory_called_per_episode(self):
        calls = []

        def factory():
            attacker = OracleAttacker(budget=0.5)
            calls.append(attacker)
            return attacker

        run_episodes(modular_victim, factory, n_episodes=3, seed=0)
        assert len(calls) == 3
