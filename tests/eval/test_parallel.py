"""Seed-sharded parallel evaluation: shards, merge, ingest, reassembly."""

import json

import pytest

from repro.eval.parallel import ShardSpec, _run_shard_serial, run_sweep
from repro.obsv.store import TelemetryStore
from repro.telemetry.context import merge_shards, shard_worker
from repro.telemetry.trace import to_chrome_trace, validate_trace

pytestmark = pytest.mark.telemetry


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One real 2-process sweep shared by the module (processes are slow)."""
    out = tmp_path_factory.mktemp("sweep")
    return run_sweep(
        n_episodes=4, workers=2, attacker="none", out_dir=out,
        run_id="testrun12345",
    )


class TestSweep:
    def test_results_reassembled_in_seed_order(self, sweep):
        assert sweep.seeds == [0, 1, 2, 3]
        assert len(sweep.results) == 4

    def test_one_shard_file_per_worker(self, sweep):
        names = sorted(p.name for p in sweep.trace_paths)
        assert names == ["trace.w0.jsonl", "trace.w1.jsonl"]
        for path in sweep.trace_paths:
            assert path.exists()

    def test_round_robin_seed_partition(self, sweep):
        by_worker = {
            s.worker: [seed for seed, _ in s.results] for s in sweep.shards
        }
        assert by_worker == {0: [0, 2], 1: [1, 3]}

    def test_shards_are_schema_valid_and_stamped(self, sweep):
        for path in sweep.trace_paths:
            assert validate_trace(path) == []
            events = [
                json.loads(line)
                for line in path.read_text().splitlines()
            ]
            assert events, f"empty shard {path}"
            worker = shard_worker(path)
            assert {e["worker"] for e in events} == {worker}
            assert {e["run"] for e in events} == {"testrun12345"}
            assert all(isinstance(e["pid"], int) for e in events)

    def test_workers_ran_in_distinct_processes(self, sweep):
        pids = {s.pid for s in sweep.shards}
        assert len(pids) == 2

    def test_shards_record_span_events(self, sweep):
        for path in sweep.trace_paths:
            events = [
                json.loads(line)
                for line in path.read_text().splitlines()
            ]
            spans = [e for e in events if e["event"] == "span"]
            assert spans, f"no span events in {path}"
            assert any(e["name"] == "episode" for e in spans)

    def test_merged_chrome_export_has_worker_lanes(self, sweep):
        doc = to_chrome_trace(merge_shards(sweep.out_dir))
        tids = {
            e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert tids == {0, 1}
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert labels == {"worker 0", "worker 1"}

    def test_shards_ingest_into_one_store(self, sweep, tmp_path):
        with TelemetryStore(tmp_path / "obsv.sqlite") as store:
            summary = store.ingest_dir(sweep.out_dir)
            assert summary["traces"] == 2
            per_worker = dict(
                store.aggregate("tick", agg="count", kind="tick",
                                group_by="worker")
            )
            assert set(per_worker) == {0, 1}
            assert all(count > 0 for count in per_worker.values())


class TestSerialPath:
    def test_serial_sweep_needs_no_processes(self, tmp_path):
        sweep = run_sweep(
            n_episodes=2, workers=1, attacker="none", out_dir=tmp_path,
            run_id="serialrun",
        )
        assert [p.name for p in sweep.trace_paths] == ["trace.w0.jsonl"]
        assert len(sweep.results) == 2

    def test_run_shard_serial_leaves_globals_untouched(self, tmp_path):
        import os

        from repro.telemetry.context import ENV_RUN_ID, current_context
        from repro.telemetry.trace import _DEFAULT_WRITER

        before_env = os.environ.get(ENV_RUN_ID)
        before_ctx = current_context()
        _run_shard_serial(
            ShardSpec(
                worker=0, seeds=(0,), attacker="none",
                out_dir=str(tmp_path), run="isolated",
            )
        )
        assert os.environ.get(ENV_RUN_ID) == before_env
        assert current_context() is before_ctx
        assert _DEFAULT_WRITER is None

    @pytest.mark.batch
    def test_batched_shard_matches_scalar_shard(self, tmp_path):
        scalar = run_sweep(
            n_episodes=4, workers=1, attacker="oracle", run_id="scalarrun",
        )
        batched = run_sweep(
            n_episodes=4, workers=1, attacker="oracle", batch=4,
            out_dir=tmp_path, run_id="batchedrun",
        )
        assert batched.seeds == scalar.seeds
        for a, b in zip(scalar.results, batched.results):
            assert a.steps == b.steps
            assert (a.collision is None) == (b.collision is None)
            assert a.nominal_return == pytest.approx(
                b.nominal_return, abs=1e-9
            )
        # Batched shards still write schema-valid per-worker traces.
        assert [p.name for p in batched.trace_paths] == ["trace.w0.jsonl"]
        events = [
            json.loads(line)
            for line in batched.trace_paths[0].read_text().splitlines()
        ]
        assert validate_trace(events) == []
        assert sum(e["event"] == "episode_end" for e in events) == 4

    def test_rejects_unknown_victim_and_attacker(self, tmp_path):
        with pytest.raises(ValueError, match="victim"):
            run_sweep(n_episodes=1, workers=1, victim="nope")
        with pytest.raises(ValueError, match="attacker"):
            run_sweep(n_episodes=1, workers=1, attacker="nope")
