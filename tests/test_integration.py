"""End-to-end integration tests tying the whole system together.

These run the complete pipeline on tiny budgets — train a driver, train an
attacker against it, attack, defend — exercising every package boundary
without relying on shipped artifacts.
"""

import numpy as np
import pytest

from repro.agents.e2e import EndToEndAgent
from repro.agents.e2e.training import DriverTrainConfig, train_driver
from repro.agents.modular import ModularAgent
from repro.core import OracleAttacker
from repro.core.training import AttackTrainConfig, train_camera_attacker
from repro.defense import FinetuneConfig, adversarial_finetune
from repro.eval import run_episode, run_episodes, success_rate
from repro.rl.bc import BcConfig


@pytest.fixture(scope="module")
def trained_driver():
    """A small but driving-competent e2e agent trained in-process."""
    config = DriverTrainConfig(
        bc_episodes=6, bc=BcConfig(epochs=10), sac_steps=0, eval_episodes=2
    )
    agent, metrics = train_driver(config)
    return agent, metrics


class TestFullPipeline:
    def test_trained_driver_drives(self, trained_driver):
        agent, metrics = trained_driver
        assert metrics["mean_passed"] >= 4.0
        result = run_episode(lambda w: EndToEndAgent(agent.policy), seed=77)
        assert result.nominal_return > 80.0

    def test_oracle_attack_defeats_trained_driver(self, trained_driver):
        agent, _ = trained_driver
        results = run_episodes(
            lambda w: EndToEndAgent(agent.policy),
            lambda: OracleAttacker(budget=1.0),
            n_episodes=4,
            seed=100,
        )
        # Full-budget attacks collapse the trained driver.
        assert all(r.collision is not None for r in results)
        assert success_rate(results) >= 0.5

    def test_trained_attacker_beats_zero_budget(self, trained_driver):
        agent, _ = trained_driver
        victim_factory = lambda w: EndToEndAgent(agent.policy)
        attacker, metrics = train_camera_attacker(
            victim_factory,
            AttackTrainConfig(
                bc_episodes=4,
                bc=BcConfig(epochs=10),
                sac_steps=0,
                bc_restarts=2,
                eval_episodes=3,
            ),
        )
        attacked = run_episodes(
            victim_factory,
            lambda: attacker,
            n_episodes=3,
            seed=200,
        )
        nominal = run_episodes(victim_factory, None, n_episodes=3, seed=200)
        mean_attacked = np.mean([r.nominal_return for r in attacked])
        mean_nominal = np.mean([r.nominal_return for r in nominal])
        assert mean_attacked < mean_nominal

    def test_finetuned_defense_improves_under_attack(self, trained_driver):
        agent, _ = trained_driver
        attacker = _quick_attacker(agent)
        tuned = adversarial_finetune(
            agent,
            attacker,
            FinetuneConfig(rho=0.25, episodes=6, bc=BcConfig(epochs=8)),
        )
        base_results = run_episodes(
            lambda w: EndToEndAgent(agent.policy),
            lambda: attacker.with_budget(0.5),
            n_episodes=4,
            seed=300,
        )
        tuned_results = run_episodes(
            lambda w: tuned,
            lambda: attacker.with_budget(0.5),
            n_episodes=4,
            seed=300,
        )
        base_mean = np.mean([r.nominal_return for r in base_results])
        tuned_mean = np.mean([r.nominal_return for r in tuned_results])
        assert tuned_mean > base_mean - 15.0  # defense never catastrophic


def _quick_attacker(driver):
    attacker, _ = train_camera_attacker(
        lambda w: EndToEndAgent(driver.policy),
        AttackTrainConfig(
            bc_episodes=4,
            bc=BcConfig(epochs=10),
            sac_steps=0,
            bc_restarts=1,
            eval_episodes=2,
        ),
    )
    return attacker


class TestModularVsE2eContrast:
    def test_modular_tracks_tighter_nominally(self, trained_driver):
        agent, _ = trained_driver
        modular = run_episode(lambda w: ModularAgent(w.road), seed=55)
        e2e = run_episode(lambda w: EndToEndAgent(agent.policy), seed=55)
        assert modular.deviation_rmse <= e2e.deviation_rmse + 0.02
