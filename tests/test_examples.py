"""Smoke tests running the example scripts as subprocesses."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "nominal episode" in out
        assert "action-space attack" in out
        assert "collision" in out

    def test_scenario_gallery(self):
        out = run_example("scenario_gallery.py")
        assert "preset: dense" in out
        assert "curved freeway" in out
        assert "oracle attack" in out
        assert "E" in out  # the rendered ego path

    def test_train_all_fast(self, tmp_path):
        """The full training pipeline on smoke-test budgets."""
        out = run_example(
            "train_all.py", "--fast", "--out", str(tmp_path), timeout=420
        )
        assert "done — artifacts" in out
        expected = {
            "e2e_driver.npz",
            "camera_attacker.npz",
            "camera_attacker_modular.npz",
            "imu_attacker.npz",
            "driver_finetuned_rho11.npz",
            "driver_finetuned_rho2.npz",
            "driver_pnn.npz",
        }
        assert expected <= {p.name for p in tmp_path.iterdir()}

    def test_reproduce_all_help(self):
        out = run_example("reproduce_all.py", "--help")
        assert "EXPERIMENTS.md" in out

    def test_attack_demo_help(self):
        out = run_example("attack_demo.py", "--help")
        assert "--episodes" in out

    def test_defense_comparison_help(self):
        out = run_example("defense_comparison.py", "--help")
        assert "--episodes" in out
