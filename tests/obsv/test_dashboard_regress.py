"""Tests for the dashboard builder and the bench regression watch."""

import json

import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import OracleAttacker
from repro.eval.episodes import run_episodes
from repro.obsv import RegressionThresholds, compare_snapshots
from repro.obsv.dashboard import build_dashboard, to_html
from repro.obsv.regress import compare_files, report
from repro.obsv.render import sparkline
from repro.telemetry.trace import TraceWriter

pytestmark = pytest.mark.obsv


@pytest.fixture()
def run_dir(tmp_path):
    writer = TraceWriter(tmp_path / "episodes.jsonl")
    run_episodes(
        lambda w: ModularAgent(w.road),
        lambda: OracleAttacker(budget=1.0),
        n_episodes=2,
        seed=3,
        trace=writer,
    )
    writer.close()
    (tmp_path / "EXPERIMENTS_metrics.json").write_text(
        json.dumps(
            {
                "counters": {
                    "episodes_total": 2.0,
                    "detector_trips_total{context=attacked}": 3.0,
                    "detector_false_trips_total": 1.0,
                },
                "gauges": {"detector_latency_ticks": 2.0},
                "histograms": {},
            }
        ),
        encoding="utf-8",
    )
    (tmp_path / "BENCH_telemetry.json").write_text(
        json.dumps(BASE_BENCH), encoding="utf-8"
    )
    return tmp_path


BASE_BENCH = {
    "schema": 1,
    "wall_clock_s": 100.0,
    "python": "3.11",
    "numpy": "1.26",
    "spans": {
        "episode/world.tick": {
            "count": 1000, "total_s": 10.0, "mean_us": 100.0, "p99_us": 200.0,
        },
        "episode": {
            "count": 5, "total_s": 12.0, "mean_us": 2.4e6, "p99_us": 3e6,
        },
    },
    "metrics": {"counters": {"collisions_total{kind=SIDE}": 10.0}},
}


class TestDashboard:
    def test_markdown_aggregates_everything(self, run_dir):
        markdown = build_dashboard(run_dir)
        assert "# Experiment dashboard" in markdown
        assert "modular" in markdown and "oracle" in markdown
        # Episode table has a success-rate cell for the oracle cell.
        assert "| modular | oracle | 1.00 | 2 |" in markdown
        # Detector satellite surfaced.
        assert "detector_trips_total" in markdown
        assert "detector_false_trips_total" in markdown
        assert "detector_latency_ticks" in markdown
        # Bench telemetry section present with the hottest span.
        assert "episode/world.tick" in markdown
        assert "100.0 s" in markdown

    def test_html_is_self_contained(self, run_dir):
        page = to_html(build_dashboard(run_dir))
        assert page.startswith("<!DOCTYPE html>")
        assert "<table>" in page and "</html>" in page
        assert "detector_trips_total" in page

    def test_empty_dir_degrades_gracefully(self, tmp_path):
        markdown = build_dashboard(tmp_path)
        assert "No episode traces" in markdown


class TestSparkline:
    def test_scales_and_pools(self):
        line = sparkline([0.0] * 50 + [1.0] * 50, width=10)
        assert len(line) == 10
        assert line[0] != line[-1]

    def test_constant_and_empty(self):
        assert sparkline([]) == ""
        assert set(sparkline([2.0, 2.0, 2.0])) == {"▁"}


def doctored(**overrides):
    snapshot = json.loads(json.dumps(BASE_BENCH))
    snapshot.update(overrides)
    return snapshot


class TestRegress:
    def test_identical_snapshots_pass(self):
        assert compare_snapshots(BASE_BENCH, BASE_BENCH) == []

    def test_wall_clock_blowup_breaches(self):
        breaches = compare_snapshots(doctored(wall_clock_s=300.0), BASE_BENCH)
        assert [b.kind for b in breaches] == ["wall_clock"]

    def test_span_mean_regression_breaches(self):
        current = doctored()
        current["spans"]["episode/world.tick"]["mean_us"] = 1000.0
        breaches = compare_snapshots(current, BASE_BENCH)
        assert any(
            b.kind == "span" and b.name == "episode/world.tick"
            for b in breaches
        )

    def test_low_call_spans_are_noise(self):
        current = doctored()
        current["spans"]["episode"]["mean_us"] = 1e9  # only 5 calls
        assert compare_snapshots(current, BASE_BENCH) == []

    def test_watched_counter_appearing_breaches(self):
        current = doctored()
        current["metrics"] = {
            "counters": {
                "collisions_total{kind=SIDE}": 10.0,
                "collisions_total{kind=BARRIER}": 1.0,
            }
        }
        breaches = compare_snapshots(current, BASE_BENCH)
        assert [b.kind for b in breaches] == ["counter"]

    def test_threshold_overrides(self, monkeypatch):
        current = doctored(wall_clock_s=160.0)
        assert compare_snapshots(current, BASE_BENCH) != []
        loose = RegressionThresholds(wall_clock_ratio=2.0)
        assert compare_snapshots(current, BASE_BENCH, loose) == []
        monkeypatch.setenv("REPRO_OBSV_MAX_RATIO", "2.5")
        assert compare_snapshots(current, BASE_BENCH) == []

    def test_compare_files_and_report(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(doctored(wall_clock_s=500.0)))
        baseline.write_text(json.dumps(BASE_BENCH))
        breaches = compare_files(current, baseline)
        assert breaches
        text = report(breaches)
        assert "BREACH" in text and "wall_clock" in text
        assert report([]).startswith("regress: OK")
