"""Concurrent multi-process store ingest: idempotent and loss-free.

N real processes ingest the same shard directory into one SQLite store
at the same time. The ``BEGIN IMMEDIATE`` write path plus the
under-the-lock re-check in ``ingest_trace`` must leave exactly one run
row per shard and exactly the shard's events — no duplicates from the
ingest race, no losses from lock contention.
"""

import json
import subprocess
import sys

import pytest

from repro.obsv.store import TelemetryStore

pytestmark = [pytest.mark.obsv, pytest.mark.watch]

N_SHARDS = 3
TICKS_PER_SHARD = 20

_INGEST_SCRIPT = """
import sys
from repro.obsv.store import TelemetryStore

store_path, run_dir = sys.argv[1], sys.argv[2]
with TelemetryStore(store_path) as store:
    summary = store.ingest_dir(run_dir)
print(summary["events"])
"""


def _write_shards(directory):
    for worker in range(N_SHARDS):
        path = directory / f"trace.w{worker}.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for tick in range(1, TICKS_PER_SHARD + 1):
                handle.write(
                    json.dumps(
                        {
                            "event": "tick", "episode": worker,
                            "tick": tick, "t": 0.1 * tick, "delta": 0.0,
                            "x": 1.0, "y": 0.0, "yaw": 0.0, "speed": 5.0,
                            "worker": worker,
                        }
                    )
                    + "\n"
                )


def test_parallel_ingest_is_idempotent_and_loss_free(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    _write_shards(run_dir)
    store_path = tmp_path / "obsv.sqlite"
    # Create the store first so the subprocesses race only on ingest,
    # not on schema creation.
    TelemetryStore(store_path).close()

    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _INGEST_SCRIPT,
             str(store_path), str(run_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(4)
    ]
    failures = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        if proc.returncode != 0:
            failures.append(err)
    assert not failures, "ingest process failed:\n" + "\n".join(failures)

    with TelemetryStore(store_path) as store:
        runs = store.runs()
        # One run row per shard — the race never duplicates a source.
        assert sorted(info.source.rsplit("/", 1)[-1] for info in runs) == [
            f"trace.w{k}.jsonl" for k in range(N_SHARDS)
        ]
        # Every event ingested exactly once.
        per_worker = dict(
            store.aggregate("tick", agg="count", group_by="worker")
        )
        assert per_worker == {
            worker: TICKS_PER_SHARD for worker in range(N_SHARDS)
        }


def test_reingest_after_append_replaces_run_in_place(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    _write_shards(run_dir)
    store_path = tmp_path / "obsv.sqlite"
    with TelemetryStore(store_path) as store:
        store.ingest_dir(run_dir)
        first = {info.source: info.run_id for info in store.runs()}
    # A shard grows (the run is still going) and is re-ingested.
    shard = run_dir / "trace.w0.jsonl"
    with shard.open("a", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {
                    "event": "tick", "episode": 0,
                    "tick": TICKS_PER_SHARD + 1, "t": 9.9, "delta": 0.0,
                    "x": 1.0, "y": 0.0, "yaw": 0.0, "speed": 5.0,
                    "worker": 0,
                }
            )
            + "\n"
        )
    with TelemetryStore(store_path) as store:
        store.ingest_dir(run_dir)
        assert len(store.runs()) == N_SHARDS  # replaced, not appended
        per_worker = dict(
            store.aggregate("tick", agg="count", group_by="worker")
        )
        assert per_worker[0] == TICKS_PER_SHARD + 1
        assert per_worker[1] == TICKS_PER_SHARD
        # untouched shards kept their run ids (ingest was a no-op there)
        after = {info.source: info.run_id for info in store.runs()}
        unchanged = [s for s in first if not s.endswith("trace.w0.jsonl")]
        for source in unchanged:
            assert after[source] == first[source]
