"""Tests for the SQLite telemetry store: ingest, query, parity."""

import json
import math

import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import OracleAttacker
from repro.eval.episodes import run_episodes
from repro.obsv.cli import main
from repro.obsv.dashboard import build_dashboard, build_dashboard_from_store
from repro.obsv.store import (
    AGGREGATES,
    TelemetryStore,
    export_csv,
    is_store_path,
)
from repro.telemetry.trace import TraceWriter

pytestmark = [pytest.mark.obsv, pytest.mark.watch]


def write_training_trace(path, loops=("sac-a", "sac-b"), records=5):
    writer = TraceWriter(path)
    for loop in loops:
        for i in range(records):
            writer.emit(
                "update_health",
                loop=loop,
                step=i * 10,
                update=i + 1,
                critic_loss=1.0 + i,
                q_mean=float(i),
                q_max=float(10 * (i + 1)),
                entropy=0.5,
                buffer_size=100 + i,
                buffer_capacity=1000,
            )
    writer.close()
    return path


@pytest.fixture()
def run_dir(tmp_path):
    writer = TraceWriter(tmp_path / "episodes.jsonl")
    run_episodes(
        lambda w: ModularAgent(w.road),
        lambda: OracleAttacker(budget=1.0),
        n_episodes=2,
        seed=3,
        trace=writer,
    )
    writer.close()
    write_training_trace(tmp_path / "training.jsonl")
    (tmp_path / "EXPERIMENTS_metrics.json").write_text(
        json.dumps(
            {
                "counters": {"episodes_total": 2.0},
                "gauges": {"detector_latency_ticks": 2.0},
                "histograms": {},
            }
        ),
        encoding="utf-8",
    )
    return tmp_path


class TestIngest:
    def test_dir_round_trip(self, run_dir, tmp_path):
        store_path = tmp_path / "telemetry.sqlite"
        with TelemetryStore(store_path) as store:
            summary = store.ingest_dir(run_dir)
            assert summary["traces"] == 2
            assert summary["snapshots"] == 1
            assert summary["events"] > 0
            # Every stored event decodes back to the original record.
            health = store.events(kind="update_health", loop="sac-a")
            assert len(health) == 5
            assert health[0]["critic_loss"] == 1.0
            assert health[-1]["q_max"] == 50.0
            snap = store.snapshot("EXPERIMENTS_metrics.json")
            assert snap["counters"]["episodes_total"] == 2.0
            assert store.snapshots() == ["EXPERIMENTS_metrics.json"]

    def test_reingest_unchanged_is_noop(self, run_dir, tmp_path):
        with TelemetryStore(tmp_path / "s.sqlite") as store:
            first = store.ingest_trace(run_dir / "training.jsonl")
            second = store.ingest_trace(run_dir / "training.jsonl")
            assert second.run_id == first.run_id
            assert len(store.events(kind="update_health")) == 10

    def test_changed_file_is_replaced(self, tmp_path):
        trace = write_training_trace(tmp_path / "t.jsonl", loops=("x",))
        with TelemetryStore(tmp_path / "s.sqlite") as store:
            store.ingest_trace(trace)
            write_training_trace(trace, loops=("x", "y"))
            store.ingest_trace(trace, force=True)
            # Old rows gone, new rows present, exactly once.
            assert len(store.events(kind="update_health")) == 15

    def test_invalid_events_are_skipped(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        good = {"event": "update_health", "loop": "x", "step": 0, "update": 1}
        bad = {"event": "update_health", "loop": 3}  # schema violation
        trace.write_text(
            json.dumps(good) + "\n" + json.dumps(bad) + "\n", encoding="utf-8"
        )
        with TelemetryStore(tmp_path / "s.sqlite") as store:
            info = store.ingest_trace(trace)
            assert info.events == 1

    def test_worker_column_hoisted_and_filterable(self, tmp_path):
        shard = tmp_path / "trace.w2.jsonl"
        with TraceWriter(shard) as writer:
            writer.emit("train_step", loop="l", step=1)  # filename hint
            writer.emit("train_step", loop="l", step=2, worker=7)  # stamp
        plain = write_training_trace(tmp_path / "plain.jsonl", loops=("x",))
        with TelemetryStore(tmp_path / "s.sqlite") as store:
            store.ingest_trace(shard)
            store.ingest_trace(plain)
            assert [
                e["step"] for e in store.events(kind="train_step", worker=2)
            ] == [1]
            assert [
                e["step"] for e in store.events(kind="train_step", worker=7)
            ] == [2]
            # unsharded, unstamped events have no worker: not matched
            assert store.events(kind="update_health", worker=2) == []
            counts = dict(
                store.aggregate("step", agg="count", kind="train_step",
                                group_by="worker")
            )
            assert counts == {2: 1, 7: 1}

    def test_is_store_path(self, tmp_path):
        store_path = tmp_path / "anything.bin"
        TelemetryStore(store_path).close()
        assert is_store_path(store_path)  # magic bytes
        assert is_store_path(tmp_path / "x.sqlite")  # suffix, no file
        jsonl = tmp_path / "t.jsonl"
        jsonl.write_text("{}\n")
        assert not is_store_path(jsonl)


class TestQuery:
    @pytest.fixture()
    def store(self, tmp_path):
        write_training_trace(tmp_path / "training.jsonl")
        with TelemetryStore(tmp_path / "s.sqlite") as store:
            store.ingest_dir(tmp_path)
            yield store

    def test_series(self, store):
        values = store.series("q_max", kind="update_health", loop="sac-a")
        assert values == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_aggregate_scalar(self, store):
        ((mean,),) = store.aggregate("critic_loss", agg="mean")
        assert mean == pytest.approx(3.0)

    def test_aggregate_grouped(self, store):
        rows = store.aggregate("q_max", agg="max", group_by="loop")
        assert rows == [("sac-a", 50.0), ("sac-b", 50.0)]
        by_run = store.aggregate("q_max", agg="count", group_by="run")
        assert [count for _, count in by_run] == [10]

    def test_every_aggregate_runs(self, store):
        for agg in AGGREGATES:
            assert store.aggregate("q_mean", agg=agg)

    def test_bad_inputs_raise(self, store):
        with pytest.raises(ValueError):
            store.aggregate("q_max", agg="median")
        with pytest.raises(ValueError):
            store.aggregate("q_max", group_by="payload")
        with pytest.raises(ValueError):
            store.series("q; DROP TABLE events")

    def test_nan_payloads_fall_back(self, tmp_path):
        writer = TraceWriter(tmp_path / "nan.jsonl")
        writer.emit(
            "update_health", loop="x", step=0, update=1,
            critic_loss=float("nan"), q_max=2.0,
        )
        writer.close()
        with TelemetryStore(tmp_path / "s.sqlite") as store:
            store.ingest_trace(tmp_path / "nan.jsonl")
            # json1 chokes on NaN payloads; the Python fallback must not.
            values = store.series("critic_loss", kind="update_health")
            assert len(values) == 1 and math.isnan(values[0])
            rows = store.aggregate("q_max", agg="max")
            assert rows[0][-1] == 2.0


class TestExportCsv:
    def test_text_and_file(self, tmp_path):
        out = tmp_path / "out.csv"
        text = export_csv(["loop", "q"], [("a", 1.5), ("b", 2.5)], out)
        assert text == "loop,q\na,1.5\nb,2.5\n"
        assert out.read_text(encoding="utf-8") == text


class TestParity:
    def test_dashboard_matches_jsonl_backend(self, run_dir, tmp_path):
        store_path = tmp_path / "s.sqlite"
        with TelemetryStore(store_path) as store:
            store.ingest_dir(run_dir)
        from_dir = build_dashboard(run_dir.resolve())
        from_store = build_dashboard_from_store(store_path)
        assert from_store == from_dir

    def test_episode_reconstruction(self, run_dir, tmp_path):
        from repro.obsv.loader import load_episodes

        store_path = tmp_path / "s.sqlite"
        with TelemetryStore(store_path) as store:
            store.ingest_dir(run_dir)
            rebuilt = store.episodes()
        direct = load_episodes(run_dir / "episodes.jsonl")
        complete = [e for e in rebuilt if e.complete]
        assert len(complete) == len([e for e in direct if e.complete])
        assert {e.episode for e in complete} == {
            e.episode for e in direct if e.complete
        }


class TestCli:
    def test_ingest_then_query(self, run_dir, capsys):
        assert main(["ingest", str(run_dir)]) == 0
        store_path = run_dir / "obsv.sqlite"
        assert store_path.exists()
        capsys.readouterr()

        assert main([
            "query", str(store_path), "--kind", "update_health",
            "--loop", "sac-a", "--field", "q_max",
        ]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["q_max", "10.0", "20.0", "30.0",
                                    "40.0", "50.0"]

        assert main([
            "query", str(store_path), "--kind", "update_health",
            "--field", "q_max", "--agg", "max", "--group-by", "loop",
        ]) == 0
        out = capsys.readouterr().out
        assert "sac-a,50.0" in out and "sac-b,50.0" in out

    def test_query_events_jsonl(self, run_dir, capsys):
        main(["ingest", str(run_dir)])
        capsys.readouterr()
        assert main([
            "query", str(run_dir / "obsv.sqlite"),
            "--kind", "update_health", "--limit", "3",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(
            json.loads(line)["event"] == "update_health" for line in lines
        )

    def test_dashboard_accepts_store(self, run_dir, capsys):
        main(["ingest", str(run_dir)])
        capsys.readouterr()
        assert main(["dashboard", str(run_dir / "obsv.sqlite")]) == 0
        store_out = capsys.readouterr().out
        assert main(["dashboard", str(run_dir.resolve())]) == 0
        dir_out = capsys.readouterr().out
        assert store_out == dir_out

    def test_regress_accepts_store(self, run_dir, tmp_path, capsys):
        bench = {
            "schema": 1, "wall_clock_s": 100.0,
            "spans": {}, "metrics": {"counters": {}},
        }
        current = run_dir / "BENCH_telemetry.json"
        current.write_text(json.dumps(bench), encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps({**bench, "wall_clock_s": 30.0}), encoding="utf-8"
        )
        main(["ingest", str(run_dir)])
        capsys.readouterr()

        rc_file = main(["regress", str(current), str(baseline)])
        file_out = capsys.readouterr().out
        rc_store = main([
            "regress", str(run_dir / "obsv.sqlite"), str(baseline)
        ])
        store_out = capsys.readouterr().out
        assert (rc_store, store_out) == (rc_file, file_out)
        assert rc_store == 1  # 100s vs 30s baseline is a breach

_V1_DDL = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE runs (
    run_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    source  TEXT NOT NULL UNIQUE,
    kind    TEXT NOT NULL,
    mtime   REAL NOT NULL,
    size    INTEGER NOT NULL,
    events  INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE events (
    run_id  INTEGER NOT NULL REFERENCES runs(run_id),
    seq     INTEGER NOT NULL,
    kind    TEXT NOT NULL,
    episode TEXT,
    loop    TEXT,
    step    INTEGER,
    tick    INTEGER,
    t       REAL,
    payload TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE INDEX idx_events_kind ON events(kind);
CREATE INDEX idx_events_episode ON events(episode);
CREATE INDEX idx_events_loop ON events(loop);
CREATE TABLE snapshots (
    name    TEXT PRIMARY KEY,
    source  TEXT NOT NULL,
    payload TEXT NOT NULL
);
"""


def make_v1_store(path):
    """Hand-build a schema-1 store (no events.name column)."""
    import sqlite3

    conn = sqlite3.connect(str(path))
    conn.executescript(_V1_DDL)
    conn.execute("INSERT INTO meta VALUES ('schema_version', '1')")
    conn.execute(
        "INSERT INTO runs (source, kind, mtime, size, events)"
        " VALUES ('old.jsonl', 'trace', 0.0, 1, 3)"
    )
    rows = [
        {"event": "profile", "name": "episode", "calls": 2,
         "total_s": 1.0, "self_s": 0.25},
        {"event": "profile", "name": "episode/world.tick", "calls": 10,
         "total_s": 0.75, "self_s": 0.75},
        {"event": "update_health", "loop": "sac-a", "step": 0, "update": 1},
    ]
    for seq, record in enumerate(rows):
        conn.execute(
            "INSERT INTO events (run_id, seq, kind, loop, payload)"
            " VALUES (1, ?, ?, ?, ?)",
            (seq, record["event"], record.get("loop"), json.dumps(record)),
        )
    conn.commit()
    conn.close()
    return path


class TestSchemaMigration:
    def test_v1_store_migrates_in_place(self, tmp_path):
        path = make_v1_store(tmp_path / "old.sqlite")
        with TelemetryStore(path) as store:
            assert store.get_meta("schema_version") == "4"
            # name backfilled from payloads: the old rows are filterable
            rows = store.events(kind="profile", name="episode")
            assert len(rows) == 1 and rows[0]["calls"] == 2
            # and rows without a payload name stay NULL / unmatched
            assert store.events(kind="update_health", name="episode") == []

    def test_migration_is_idempotent_and_queryable(self, tmp_path):
        path = make_v1_store(tmp_path / "old.sqlite")
        TelemetryStore(path).close()  # migrate
        with TelemetryStore(path) as store:  # reopen: no-op
            assert store.get_meta("schema_version") == "4"
            rows = store.aggregate(
                "self_s", agg="sum", kind="profile", group_by="name"
            )
            assert dict(rows) == {
                "episode": 0.25, "episode/world.tick": 0.75
            }

    def test_newer_schema_refuses_to_open(self, tmp_path):
        path = tmp_path / "future.sqlite"
        TelemetryStore(path).close()
        import sqlite3

        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE meta SET value = '99' WHERE key ="
                     " 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema v99"):
            TelemetryStore(path)


class TestNameColumn:
    @pytest.fixture()
    def profile_run(self, tmp_path):
        writer = TraceWriter(tmp_path / "PROFILE_events.jsonl")
        writer.emit("profile", name="episode", calls=4, total_s=2.0,
                    self_s=0.5, mflops_per_s=120.0)
        writer.emit("profile", name="episode/agent.e2e.act", calls=400,
                    total_s=1.5, self_s=1.5, mflops_per_s=480.0)
        writer.close()
        return tmp_path

    def test_ingest_and_filter_by_name(self, profile_run, tmp_path):
        with TelemetryStore(tmp_path / "s.sqlite") as store:
            store.ingest_dir(profile_run)
            act = store.events(kind="profile", name="episode/agent.e2e.act")
            assert len(act) == 1 and act[0]["mflops_per_s"] == 480.0
            values = store.series("self_s", kind="profile", name="episode")
            assert values == [0.5]
            rows = store.aggregate(
                "mflops_per_s", agg="max", kind="profile", group_by="name"
            )
            assert ("episode/agent.e2e.act", 480.0) in rows

    def test_cli_name_filter_and_group(self, profile_run, capsys):
        assert main(["ingest", str(profile_run)]) == 0
        store_path = profile_run / "obsv.sqlite"
        capsys.readouterr()
        assert main([
            "query", str(store_path), "--kind", "profile",
            "--name", "episode", "--field", "calls",
        ]) == 0
        assert capsys.readouterr().out.splitlines() == ["calls", "4.0"]
        assert main([
            "query", str(store_path), "--kind", "profile",
            "--field", "self_s", "--agg", "sum", "--group-by", "name",
        ]) == 0
        out = capsys.readouterr().out
        assert "episode,0.5" in out and "episode/agent.e2e.act,1.5" in out
