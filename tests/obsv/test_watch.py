"""Tests for the watchdog rules and the live trace monitor."""

import json
import math

import numpy as np
import pytest

from repro.obsv.alerts import Alert, WatchConfig, Watchdog
from repro.obsv.cli import main
from repro.obsv.store import TelemetryStore
from repro.obsv.watch import (
    MultiTail,
    TraceTail,
    WatchState,
    render_status,
    watch_trace,
)
from repro.telemetry.trace import TraceWriter, read_trace, validate_event

pytestmark = [pytest.mark.obsv, pytest.mark.watch]


def health(update, loop="sac", **overrides):
    event = {
        "event": "update_health",
        "loop": loop,
        "step": update * 10,
        "update": update,
        "critic_loss": 1.0,
        "actor_loss": -0.2,
        "alpha": 0.1,
        "q_mean": 5.0,
        "q_max": 10.0,
        "entropy": 1.0,
        "buffer_size": 500 + update,
        "buffer_capacity": 1000,
        "steps_per_s": 100.0,
    }
    event.update(overrides)
    return event


def step(idx, reward, done=False, loop="sac"):
    return {
        "event": "train_step", "loop": loop, "step": idx,
        "reward": reward, "done": done,
    }


def feed(watchdog, events):
    fired = []
    for event in events:
        fired.extend(watchdog.observe(event))
    return fired


class TestRules:
    """Each synthetic trace trips exactly the rule under test."""

    def test_nan_loss(self):
        dog = Watchdog(WatchConfig())
        fired = feed(dog, [health(1), health(2, critic_loss=float("nan"))])
        assert [a.rule for a in fired] == ["nan_loss"]
        assert fired[0].severity == "critical"

    def test_inf_counts_as_nan_loss(self):
        dog = Watchdog(WatchConfig())
        fired = feed(dog, [health(1, q_mean=float("inf"))])
        assert [a.rule for a in fired] == ["nan_loss"]

    def test_q_divergence(self):
        dog = Watchdog(WatchConfig(q_limit=100.0))
        fired = feed(dog, [health(1), health(2, q_max=250.0)])
        assert [a.rule for a in fired] == ["q_divergence"]
        assert fired[0].value == 250.0 and fired[0].threshold == 100.0

    def test_entropy_collapse_needs_patience(self):
        config = WatchConfig(entropy_floor=-2.0, entropy_patience=3)
        dog = Watchdog(config)
        low = [health(i, entropy=-3.0) for i in range(1, 3)]
        assert feed(dog, low) == []
        # A recovery resets the streak.
        assert feed(dog, [health(3, entropy=0.0)]) == []
        fired = feed(dog, [health(i, entropy=-3.0) for i in range(4, 7)])
        assert [a.rule for a in fired] == ["entropy_collapse"]

    def test_buffer_starvation(self):
        config = WatchConfig(starvation_updates=3)
        dog = Watchdog(config)
        stuck = [health(i, buffer_size=400) for i in range(1, 6)]
        fired = feed(dog, stuck)
        assert [a.rule for a in fired] == ["buffer_starvation"]

    def test_full_buffer_never_starves(self):
        config = WatchConfig(starvation_updates=2)
        dog = Watchdog(config)
        full = [
            health(i, buffer_size=1000, buffer_capacity=1000)
            for i in range(1, 8)
        ]
        assert feed(dog, full) == []

    def test_throughput_regression(self):
        config = WatchConfig(
            throughput_ratio=0.5, throughput_patience=2, throughput_warmup=2
        )
        dog = Watchdog(config)
        warm = [health(i, steps_per_s=100.0) for i in range(1, 3)]
        slow = [health(i, steps_per_s=20.0) for i in range(3, 6)]
        fired = feed(dog, warm + slow)
        assert [a.rule for a in fired] == ["throughput_regression"]
        assert fired[0].threshold == pytest.approx(50.0)

    def test_reward_plateau(self):
        config = WatchConfig(plateau_window=3)
        dog = Watchdog(config)
        events = []
        # Episode 1 sets the best return (10), then 3 worse episodes.
        for episode, total in enumerate([10.0, 5.0, 4.0, 3.0]):
            events.append(step(episode * 2, total / 2.0))
            events.append(step(episode * 2 + 1, total / 2.0, done=True))
        fired = feed(dog, events)
        assert [a.rule for a in fired] == ["reward_plateau"]

    def test_improving_rewards_stay_quiet(self):
        dog = Watchdog(WatchConfig(plateau_window=2))
        events = []
        for episode, total in enumerate([1.0, 2.0, 3.0, 4.0]):
            events.append(step(episode, total, done=True))
        assert feed(dog, events) == []

    def test_rules_fire_once_per_loop(self):
        dog = Watchdog(WatchConfig(q_limit=100.0))
        fired = feed(dog, [health(i, q_max=500.0) for i in range(1, 5)])
        assert len(fired) == 1
        # ...but independently per loop.
        fired = feed(dog, [health(1, loop="other", q_max=500.0)])
        assert [a.loop for a in fired] == ["other"]

    def test_existing_alert_event_pre_arms_dedup(self):
        dog = Watchdog(WatchConfig(q_limit=100.0))
        recorded = {
            "event": "alert", "rule": "q_divergence", "loop": "sac",
            "severity": "critical", "message": "recorded earlier",
        }
        assert feed(dog, [recorded, health(1, q_max=500.0)]) == []

    def test_alert_event_round_trips_schema(self):
        alert = Alert(
            rule="q_divergence", severity="critical", message="m",
            loop="sac", step=10, update=2, value=5.0, threshold=1.0,
        )
        assert validate_event({"event": "alert", **alert.to_event()}) == []


class TestWatchConfig:
    def test_env_and_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCH_Q_LIMIT", "123.5")
        monkeypatch.setenv("REPRO_WATCH_PLATEAU_WINDOW", "7")
        monkeypatch.setenv("REPRO_WATCH_STARVATION_UPDATES", "junk")
        config = WatchConfig.from_env(entropy_floor=-1.0)
        assert config.q_limit == 123.5
        assert config.plateau_window == 7
        assert config.entropy_floor == -1.0
        assert config.starvation_updates == WatchConfig().starvation_updates

    def test_none_overrides_ignored(self):
        assert WatchConfig.from_env(q_limit=None) == WatchConfig.from_env()


class TestTail:
    def test_incremental_and_partial_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tail = TraceTail(path)
        assert tail.poll() == []
        path.write_text('{"event": "tick"}\n{"event": "ti', encoding="utf-8")
        assert [e["event"] for e in tail.poll()] == ["tick"]
        with path.open("a", encoding="utf-8") as handle:
            handle.write('ck"}\n')
        assert [e["event"] for e in tail.poll()] == ["tick"]
        assert tail.poll() == []


def write_diverging_trace(path):
    writer = TraceWriter(path)
    for i in range(1, 6):
        writer.emit(
            "update_health", loop="sac-test", step=i * 10, update=i,
            critic_loss=1.0, q_mean=4.0 ** i, q_max=float(10 ** i),
            entropy=1.0, buffer_size=100 + i, buffer_capacity=1000,
        )
    writer.close()
    return path


class TestWatchTrace:
    def test_once_on_quiet_trace(self, tmp_path, capsys):
        trace = tmp_path / "quiet.jsonl"
        writer = TraceWriter(trace)
        writer.emit("update_health", loop="sac", step=10, update=1,
                    critic_loss=0.5, q_max=2.0)
        writer.close()
        assert main(["watch", str(trace), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro.obsv watch" in out
        assert "alerts: none" in out

    def test_exit_on_alert_writes_alert_event(self, tmp_path, capsys):
        trace = write_diverging_trace(tmp_path / "div.jsonl")
        rc = main(["watch", str(trace), "--once", "--exit-on-alert"])
        assert rc == 1
        alerts = [
            e for e in read_trace(trace) if e.get("event") == "alert"
        ]
        assert [a["rule"] for a in alerts] == ["q_divergence"]
        assert validate_event(alerts[0]) == []
        assert "q_divergence" in capsys.readouterr().out
        # Re-watching the same (now annotated) trace must not duplicate.
        assert main(["watch", str(trace), "--once"]) == 0
        again = [
            e for e in read_trace(trace) if e.get("event") == "alert"
        ]
        assert len(again) == 1

    def test_no_write_alerts_leaves_trace_untouched(self, tmp_path, capsys):
        trace = write_diverging_trace(tmp_path / "div.jsonl")
        before = trace.read_text(encoding="utf-8")
        rc = main([
            "watch", str(trace), "--once", "--exit-on-alert",
            "--no-write-alerts",
        ])
        assert rc == 1
        assert trace.read_text(encoding="utf-8") == before

    def test_threshold_flag_overrides(self, tmp_path, capsys):
        trace = write_diverging_trace(tmp_path / "div.jsonl")
        rc = main([
            "watch", str(trace), "--once", "--exit-on-alert",
            "--q-limit", "1e9", "--no-write-alerts",
        ])
        assert rc == 0

    def test_on_alert_hook_gets_env(self, tmp_path):
        import io

        trace = write_diverging_trace(tmp_path / "div.jsonl")
        marker = tmp_path / "hook.out"
        rc = watch_trace(
            trace, once=True, exit_on_alert=True, write_alerts=False,
            on_alert=f'printf "%s" "$REPRO_ALERT_RULE" > {marker}',
            out=io.StringIO(),
        )
        assert rc == 1
        assert marker.read_text() == "q_divergence"

    def test_idle_exit_stops_follow_mode(self, tmp_path):
        import io

        trace = write_diverging_trace(tmp_path / "div.jsonl")
        sleeps = []
        rc = watch_trace(
            trace, idle_exit=0.0, write_alerts=False,
            sleep=sleeps.append, out=io.StringIO(),
        )
        assert rc == 0
        assert sleeps == []  # exited on the first idle check

    def test_render_status_shows_loop_health(self):
        state = WatchState()
        for event in write_status_events():
            state.ingest(event)
        text = render_status(state, "trace.jsonl", total_steps=1000)
        assert "loop sac" in text
        assert "buffer 505/1000" in text
        assert "ETA" in text
        assert "ep return" in text


def write_status_events():
    events = [health(5, steps_per_s=50.0)]
    for i in range(20):
        events.append(step(i, 1.0, done=(i % 10 == 9)))
    return events


class TestWatchDirectory:
    """A directory of per-worker shards multiplexes into one view."""

    def _write_shards(self, directory):
        for worker in (0, 1):
            with TraceWriter(
                directory / f"trace.w{worker}.jsonl", context=None
            ) as writer:
                writer.emit(
                    "update_health", loop="sac", step=10, update=1,
                    critic_loss=0.5, q_max=2.0,
                )

    def test_multitail_stamps_worker_and_sees_new_shards(self, tmp_path):
        self._write_shards(tmp_path)
        tail = MultiTail(tmp_path)
        events = tail.poll()
        assert sorted(e["worker"] for e in events) == [0, 1]
        assert tail.poll() == []  # incremental
        with TraceWriter(tmp_path / "trace.w5.jsonl", context=None) as w:
            w.emit("train_step", loop="sac", step=1)
        (late,) = tail.poll()
        assert late["worker"] == 5

    def test_directory_view_shows_per_worker_loops(self, tmp_path, capsys):
        self._write_shards(tmp_path)
        assert main(["watch", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "loop sac@w0" in out
        assert "loop sac@w1" in out
        assert "workers 0,1" in out

    def test_directory_alerts_tagged_and_written_to_sidecar(
        self, tmp_path, capsys
    ):
        write_diverging_trace(tmp_path / "trace.w3.jsonl")
        rc = main(["watch", str(tmp_path), "--once", "--exit-on-alert"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "sac-test@w3" in out
        sidecar = tmp_path / "alerts.jsonl"
        assert sidecar.exists()
        (alert,) = read_trace(sidecar)
        assert alert["event"] == "alert"
        assert alert["rule"] == "q_divergence"
        assert alert["loop"] == "sac-test@w3"
        assert alert["worker"] == 3
        assert validate_event(alert) == []
        # The shards themselves were never written to.
        assert all(
            e.get("event") != "alert"
            for e in read_trace(tmp_path / "trace.w3.jsonl")
        )


class TestDivergingSacAcceptance:
    """The ISSUE acceptance path: a deliberately diverging SAC run trips a
    watchdog, the alert lands in the trace, and the store reproduces the
    triggering metric values."""

    @pytest.fixture(scope="class")
    def diverged(self, tmp_path_factory):
        from repro.rl.health import HealthEmitter
        from repro.rl.sac import Sac, SacConfig

        tmp = tmp_path_factory.mktemp("diverge")
        trace_path = tmp / "sac_diverge.jsonl"
        config = SacConfig(
            hidden=(8, 8), batch_size=16, buffer_capacity=256,
            critic_lr=10.0, actor_lr=10.0, health_every=1,
        )
        sac = Sac(4, 2, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        for _ in range(64):
            sac.observe(
                rng.normal(size=4), rng.uniform(-1, 1, size=2),
                float(rng.normal() * 10.0), rng.normal(size=4), False,
            )
        writer = TraceWriter(trace_path)
        emitter = HealthEmitter(writer, "sac-diverge", every=1)
        for i in range(30):
            stats = sac.update()
            emitter.after_update(sac, step=i, stats=stats)
        writer.close()
        assert emitter.emitted == 30
        return tmp, trace_path

    def test_watch_exits_nonzero_and_records_alert(self, diverged, capsys):
        _, trace_path = diverged
        rc = main([
            "watch", str(trace_path), "--once", "--exit-on-alert",
        ])
        assert rc == 1
        alerts = [
            e for e in read_trace(trace_path) if e.get("event") == "alert"
        ]
        assert alerts, "diverging run fired no watchdog"
        # Divergence shows up as exploding |Q| (or outright NaN); a run
        # this broken may trip secondary rules (entropy collapse) too.
        assert {a["rule"] for a in alerts} & {"q_divergence", "nan_loss"}
        assert all(validate_event(a) == [] for a in alerts)
        capsys.readouterr()

    def test_store_reproduces_triggering_values(self, diverged, capsys):
        run_dir, trace_path = diverged
        # Fire the watch here too so this test stands alone.
        main(["watch", str(trace_path), "--once", "--exit-on-alert"])
        capsys.readouterr()
        recorded = [
            e for e in read_trace(trace_path)
            if e.get("event") == "update_health"
        ]
        expected = [
            float(e["q_max"]) for e in recorded
            if not math.isnan(e["q_max"])
        ]
        store_path = run_dir / "obsv.sqlite"
        with TelemetryStore(store_path) as store:
            store.ingest_dir(run_dir)
            got = store.series("q_max", kind="update_health")
            alerts = store.events(kind="alert")
            got_finite = [v for v in got if not math.isnan(v)]
            assert got_finite == expected
            assert alerts
            assert alerts[0]["rule"] in {"q_divergence", "nan_loss"}
            # The alert's triggering value is reproducible from the store.
            value = alerts[0].get("value")
            if value is not None and not math.isnan(value):
                field = (
                    "q_max" if alerts[0]["rule"] == "q_divergence" else
                    "critic_loss"
                )
                series = store.series(field, kind="update_health")
                assert any(v == pytest.approx(value) for v in series)

    def test_query_cli_on_diverged_store(self, diverged, capsys):
        run_dir, trace_path = diverged
        main(["watch", str(trace_path), "--once", "--exit-on-alert"])
        main(["ingest", str(run_dir)])
        capsys.readouterr()
        rc = main([
            "query", str(run_dir / "obsv.sqlite"),
            "--kind", "update_health", "--field", "q_max",
            "--agg", "max", "--group-by", "loop",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("loop,max(q_max)")
        assert "sac-diverge" in out
