"""Tests for replay verification (trace fidelity proofs)."""

import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import NullAttacker, OracleAttacker
from repro.eval.episodes import run_episode
from repro.eval.recorder import record_episode
from repro.obsv import ReplayError, replay_episode, split_episodes
from repro.telemetry.trace import TraceWriter

pytestmark = pytest.mark.obsv


def record(seed=3, attacker=None, runner=run_episode):
    writer = TraceWriter()
    runner(
        lambda w: ModularAgent(w.road),
        attacker=attacker,
        seed=seed,
        trace=writer,
        episode_id=seed,
    )
    return split_episodes(writer.events)[0]


class TestReplayFidelity:
    def test_oracle_episode_replays_exactly(self):
        episode = record(attacker=OracleAttacker(budget=1.0))
        report = replay_episode(episode)
        assert report.ok, report.to_markdown()
        assert report.diffs == []
        assert report.end_diffs == []
        assert report.steps_recorded == report.steps_replayed
        assert report.fields_compared > 0
        assert max(report.max_error.values()) <= 1e-9

    def test_nominal_episode_replays_exactly(self):
        episode = record(seed=11, attacker=NullAttacker())
        report = replay_episode(episode)
        assert report.ok, report.to_markdown()

    def test_recorder_trace_replays_through_runner(self):
        # record_episode emits a subset of run_episode's tick fields with
        # identical semantics; replay must reproduce all of them.
        episode = record(
            seed=4, attacker=OracleAttacker(budget=1.0), runner=record_episode
        )
        report = replay_episode(episode)
        assert report.ok, report.to_markdown()

    def test_doctored_trace_is_flagged(self):
        episode = record(attacker=OracleAttacker(budget=1.0))
        episode.ticks[10]["x"] += 0.5  # falsify one recorded pose
        report = replay_episode(episode)
        assert not report.ok
        assert any(
            d.fld == "x" and d.tick == episode.ticks[10]["tick"]
            for d in report.diffs
        )
        assert "MISMATCH" in report.to_markdown()

    def test_uniform_tolerance_can_mask_small_doctoring(self):
        episode = record(attacker=OracleAttacker(budget=1.0))
        episode.ticks[10]["x"] += 1e-4
        assert not replay_episode(episode).ok
        assert replay_episode(episode, tolerance=1e-2).ok

    def test_tolerance_env_override(self, monkeypatch):
        episode = record(attacker=OracleAttacker(budget=1.0))
        episode.ticks[5]["speed"] += 1e-4
        monkeypatch.setenv("REPRO_OBSV_TOLERANCE", "0.01")
        assert replay_episode(episode).ok


class TestReplayErrors:
    def test_missing_start_event(self):
        episode = record(attacker=OracleAttacker(budget=1.0))
        episode.start = None
        with pytest.raises(ReplayError):
            replay_episode(episode)

    def test_custom_scenario_is_rejected(self):
        episode = record(attacker=OracleAttacker(budget=1.0))
        episode.start["scenario"] = "custom"
        with pytest.raises(ReplayError, match="custom scenario"):
            replay_episode(episode)

    def test_unknown_victim_and_attacker(self):
        episode = record(attacker=OracleAttacker(budget=1.0))
        episode.start["victim"] = "mystery-agent"
        with pytest.raises(ReplayError, match="not replayable"):
            replay_episode(episode)
        episode.start["victim"] = "modular"
        episode.start["attacker"] = "mystery-attack"
        with pytest.raises(ReplayError, match="not replayable"):
            replay_episode(episode)
