"""CLI tests plus the end-to-end smoke: demo -> trace -> forensics -> replay."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import OracleAttacker
from repro.eval.episodes import run_episode
from repro.experiments import registry
from repro.obsv.cli import main
from repro.telemetry.trace import TraceWriter, validate_trace

pytestmark = pytest.mark.obsv

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture()
def oracle_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceWriter(path) as writer:
        run_episode(
            lambda w: ModularAgent(w.road),
            attacker=OracleAttacker(budget=1.0),
            seed=3,
            trace=writer,
            episode_id=3,
        )
    return path


class TestCli:
    def test_forensics_markdown_and_json(self, oracle_trace, capsys, tmp_path):
        assert main(["forensics", str(oracle_trace)]) == 0
        out = capsys.readouterr().out
        assert "Forensics — episode 3" in out and "strike onset" in out

        target = tmp_path / "forensics.json"
        assert main(
            ["forensics", str(oracle_trace), "--json", "--out", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload[0]["collision"] == "SIDE"

    def test_replay_ok_and_doctored(self, oracle_trace, capsys, tmp_path):
        assert main(["replay", str(oracle_trace)]) == 0
        assert "OK — trace is faithful" in capsys.readouterr().out

        doctored = tmp_path / "doctored.jsonl"
        lines = oracle_trace.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        for event in events:
            if event["event"] == "tick" and event["tick"] == 10:
                event["x"] += 1.0
        doctored.write_text(
            "\n".join(json.dumps(e) for e in events) + "\n"
        )
        assert main(["replay", str(doctored)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_dashboard(self, oracle_trace, capsys):
        assert main(["dashboard", str(oracle_trace.parent)]) == 0
        assert "Experiment dashboard" in capsys.readouterr().out
        assert main(["dashboard", str(oracle_trace.parent), "--html"]) == 0
        assert "<!DOCTYPE html>" in capsys.readouterr().out

    def test_serve_and_worker_flags_parse(self):
        from repro.obsv.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "runs/sweep", "--port", "8123", "--poll", "0.2"]
        )
        assert args.dir == "runs/sweep"
        assert args.port == 8123
        assert args.host == "127.0.0.1"
        args = parser.parse_args(
            ["query", "s.sqlite", "--worker", "3", "--group-by", "worker"]
        )
        assert args.worker == 3
        assert args.group_by == "worker"

    def test_regress_exit_codes(self, tmp_path, capsys):
        base = {
            "wall_clock_s": 100.0,
            "spans": {},
            "metrics": {"counters": {}},
        }
        current = dict(base, wall_clock_s=500.0)
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        baseline_path.write_text(json.dumps(base))
        current_path.write_text(json.dumps(current))
        assert main(
            ["regress", str(baseline_path), str(baseline_path)]
        ) == 0
        assert main(["regress", str(current_path), str(baseline_path)]) == 1
        assert "BREACH" in capsys.readouterr().out
        # A looser explicit ratio clears the breach.
        assert main(
            ["regress", str(current_path), str(baseline_path),
             "--max-ratio", "10"]
        ) == 0


@pytest.mark.slow
class TestDemoSmoke:
    """The ISSUE's CI smoke: attack_demo -> validate -> forensics -> replay."""

    @pytest.fixture(autouse=True)
    def needs_artifacts(self):
        if not registry.has_artifact(registry.CAMERA_ATTACKER_E2E):
            pytest.skip("attack artifacts missing; run examples/train_all.py")

    def test_attack_demo_trace_roundtrip(self, tmp_path):
        trace_path = tmp_path / "demo_trace.jsonl"
        result = subprocess.run(
            [sys.executable, str(REPO / "examples" / "attack_demo.py"),
             "--episodes", "1"],
            capture_output=True,
            text=True,
            timeout=600,
            cwd=REPO,
            env={
                **__import__("os").environ,
                "REPRO_TRACE": str(trace_path),
                "PYTHONPATH": str(REPO / "src"),
            },
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert trace_path.exists()
        assert validate_trace(trace_path) == []

        out = subprocess.run(
            [sys.executable, "-m", "repro.obsv", "forensics", str(trace_path)],
            capture_output=True, text=True, timeout=120, cwd=REPO,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(REPO / "src"),
            },
        )
        assert out.returncode == 0, out.stderr[-2000:]
        assert "Forensics — episode" in out.stdout

        replay = subprocess.run(
            [sys.executable, "-m", "repro.obsv", "replay", str(trace_path),
             "--episode", "2024"],
            capture_output=True, text=True, timeout=300, cwd=REPO,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(REPO / "src"),
            },
        )
        assert replay.returncode == 0, replay.stdout[-2000:] + replay.stderr[-500:]
        assert "OK — trace is faithful" in replay.stdout
