"""Store v4: provenance columns, label filters, provenance group-bys.

The satellite coverage for the provenance subsystem: trace runs hoist
their logical run label + provenance stamp onto the ``runs`` table,
aggregates can group by provenance keys (label / git SHA / config
hash) in both the json1 and Python-fallback paths, and pre-v4 stores
— including mixed stores where only some traces carry provenance —
migrate in place with a backfill.
"""

import json
import sqlite3

import pytest

from repro.obsv.store import (
    GROUP_KEYS,
    PROVENANCE_KEYS,
    TelemetryStore,
)
from repro.telemetry.trace import TraceWriter

pytestmark = pytest.mark.obsv

SHA_A = "a" * 40
SHA_B = "b" * 40


def write_labelled_trace(
    path, label, git_sha, config_hash, q_values, dirty=False,
):
    """A hand-built trace: one provenance event + update_health rows."""
    writer = TraceWriter(path)
    writer.emit(
        "provenance",
        schema=1,
        git_sha=git_sha,
        git_dirty=dirty,
        config_hash=config_hash,
        run=label,
    )
    for i, q in enumerate(q_values):
        writer.emit(
            "update_health",
            loop="sac",
            step=i * 10,
            update=i + 1,
            critic_loss=1.0,
            q_mean=0.0,
            q_max=float(q),
            entropy=0.5,
            buffer_size=100,
            buffer_capacity=1000,
            run=label,
        )
    writer.close()
    return path


def write_plain_trace(path, q_values):
    """A pre-provenance-style trace: no run stamp, no provenance event."""
    writer = TraceWriter(path)
    for i, q in enumerate(q_values):
        writer.emit(
            "update_health",
            loop="sac",
            step=i * 10,
            update=i + 1,
            critic_loss=1.0,
            q_mean=0.0,
            q_max=float(q),
            entropy=0.5,
            buffer_size=100,
            buffer_capacity=1000,
        )
    writer.close()
    return path


@pytest.fixture()
def mixed_store(tmp_path):
    """Two labelled runs (different SHA/config) + one unlabelled run."""
    write_labelled_trace(
        tmp_path / "sweep_a.jsonl", "sweepA", SHA_A, "cfg-one", [1.0, 3.0]
    )
    write_labelled_trace(
        tmp_path / "sweep_b.jsonl", "sweepB", SHA_B, "cfg-two",
        [10.0, 30.0], dirty=True,
    )
    write_plain_trace(tmp_path / "legacy.jsonl", [100.0])
    store = TelemetryStore(tmp_path / "obsv.sqlite")
    store.ingest_dir(tmp_path)
    yield store
    store.close()


class TestRunColumns:
    def test_ingest_hoists_label_and_provenance(self, mixed_store):
        by_label = {info.label: info for info in mixed_store.runs()}
        assert set(by_label) == {"sweepA", "sweepB", None}
        assert by_label["sweepA"].git_sha == SHA_A
        assert by_label["sweepA"].dirty == 0
        assert by_label["sweepA"].config_hash == "cfg-one"
        assert by_label["sweepB"].dirty == 1
        legacy = by_label[None]
        assert legacy.git_sha is None and legacy.config_hash is None

    def test_run_provenance_decodes_payload(self, mixed_store):
        rows = mixed_store.run_provenance()
        assert len(rows) == 3  # every trace run, provenance or not
        stamped = {r["label"]: r for r in rows if r["provenance"]}
        assert set(stamped) == {"sweepA", "sweepB"}
        assert stamped["sweepA"]["provenance"]["git_sha"] == SHA_A
        assert stamped["sweepB"]["provenance"]["git_dirty"] is True
        legacy = next(r for r in rows if r["label"] is None)
        assert legacy["provenance"] is None

    def test_provenance_keys_are_group_keys(self):
        assert PROVENANCE_KEYS == ("label", "git_sha", "config_hash")
        for key in PROVENANCE_KEYS:
            assert key in GROUP_KEYS


class TestLabelFilter:
    def test_events_narrowed_to_one_logical_run(self, mixed_store):
        rows = mixed_store.events(kind="update_health", label="sweepA")
        assert len(rows) == 2
        assert {r["run"] for r in rows} == {"sweepA"}
        assert mixed_store.events(label="nope") == []

    def test_series_respects_label(self, mixed_store):
        assert mixed_store.series(
            "q_max", kind="update_health", label="sweepB"
        ) == [10.0, 30.0]

    def test_aggregate_respects_label(self, mixed_store):
        (row,) = mixed_store.aggregate(
            "q_max", agg="mean", kind="update_health", label="sweepA"
        )
        assert row[-1] == pytest.approx(2.0)


class TestProvenanceGroupBy:
    EXPECTED = {
        "label": {"sweepA": 2.0, "sweepB": 20.0, None: 100.0},
        "git_sha": {SHA_A: 2.0, SHA_B: 20.0, None: 100.0},
        "config_hash": {"cfg-one": 2.0, "cfg-two": 20.0, None: 100.0},
    }

    @pytest.mark.parametrize("key", PROVENANCE_KEYS)
    def test_grouped_mean_json1(self, mixed_store, key):
        rows = mixed_store.aggregate(
            "q_max", agg="mean", kind="update_health", group_by=key
        )
        assert dict(rows) == self.EXPECTED[key]

    @pytest.mark.parametrize("key", PROVENANCE_KEYS)
    def test_python_fallback_matches_json1(self, mixed_store, key):
        json1 = mixed_store.aggregate(
            "q_max", agg="mean", kind="update_health", group_by=key
        )
        mixed_store._json1 = False
        try:
            fallback = mixed_store.aggregate(
                "q_max", agg="mean", kind="update_health", group_by=key
            )
        finally:
            mixed_store._json1 = True
        assert dict(fallback) == dict(json1)

    def test_count_per_git_sha(self, mixed_store):
        rows = mixed_store.aggregate(
            "q_max", agg="count", kind="update_health", group_by="git_sha"
        )
        assert dict(rows) == {SHA_A: 2, SHA_B: 2, None: 1}


_V3_DDL = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE runs (
    run_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    source  TEXT NOT NULL UNIQUE,
    kind    TEXT NOT NULL,
    mtime   REAL NOT NULL,
    size    INTEGER NOT NULL,
    events  INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE events (
    run_id  INTEGER NOT NULL REFERENCES runs(run_id),
    seq     INTEGER NOT NULL,
    kind    TEXT NOT NULL,
    episode TEXT,
    loop    TEXT,
    step    INTEGER,
    tick    INTEGER,
    t       REAL,
    name    TEXT,
    worker  INTEGER,
    payload TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE TABLE snapshots (
    name    TEXT PRIMARY KEY,
    source  TEXT NOT NULL,
    payload TEXT NOT NULL
);
"""


def make_v3_store(path):
    """Hand-build a schema-3 store holding one stamped + one bare trace."""
    conn = sqlite3.connect(str(path))
    conn.executescript(_V3_DDL)
    conn.execute("INSERT INTO meta VALUES ('schema_version', '3')")
    stamped = [
        {"event": "provenance", "schema": 1, "git_sha": SHA_A,
         "git_dirty": False, "config_hash": "cfg-one", "run": "sweepA"},
        {"event": "update_health", "loop": "sac", "step": 0, "update": 1,
         "q_max": 5.0, "run": "sweepA"},
    ]
    bare = [
        {"event": "update_health", "loop": "sac", "step": 0, "update": 1,
         "q_max": 7.0},
    ]
    for run_id, (source, events) in enumerate(
        (("stamped.jsonl", stamped), ("bare.jsonl", bare)), start=1
    ):
        conn.execute(
            "INSERT INTO runs (run_id, source, kind, mtime, size, events)"
            " VALUES (?, ?, 'trace', 0.0, 1, ?)",
            (run_id, source, len(events)),
        )
        for seq, record in enumerate(events):
            conn.execute(
                "INSERT INTO events (run_id, seq, kind, loop, payload)"
                " VALUES (?, ?, ?, ?, ?)",
                (run_id, seq, record["event"], record.get("loop"),
                 json.dumps(record)),
            )
    conn.commit()
    conn.close()
    return path


class TestV3Migration:
    def test_migrates_and_backfills_provenance(self, tmp_path):
        path = make_v3_store(tmp_path / "old.sqlite")
        with TelemetryStore(path) as store:
            assert store.get_meta("schema_version") == "4"
            by_label = {info.label: info for info in store.runs()}
            assert by_label["sweepA"].git_sha == SHA_A
            assert by_label["sweepA"].config_hash == "cfg-one"
            # Pre-provenance trace keeps NULL columns instead of raising.
            assert by_label[None].git_sha is None

    def test_migrated_store_supports_provenance_queries(self, tmp_path):
        path = make_v3_store(tmp_path / "old.sqlite")
        TelemetryStore(path).close()  # migrate
        with TelemetryStore(path) as store:  # reopen: no-op
            assert store.get_meta("schema_version") == "4"
            rows = store.aggregate(
                "q_max", agg="mean", kind="update_health",
                group_by="git_sha",
            )
            assert dict(rows) == {SHA_A: 5.0, None: 7.0}
            assert store.series(
                "q_max", kind="update_health", label="sweepA"
            ) == [5.0]

    def test_migration_is_idempotent(self, tmp_path):
        path = make_v3_store(tmp_path / "old.sqlite")
        for _ in range(2):
            with TelemetryStore(path) as store:
                assert store.get_meta("schema_version") == "4"
