"""The statistical comparison engine, its CLI, gates, and surfacing.

Covers the ISSUE acceptance criteria directly: ``obsv compare`` on two
recorded demo runs produces bit-identical bootstrap CIs / p-values
under a fixed ``--stat-seed``; ``obsv regress --metrics`` exits nonzero
on an injected metric drift while passing on the committed
``benchmarks/BASELINE_metrics.json``; and the partial-input hardening
satellite (missing metrics files, empty dirs, missing sources degrade
instead of raising).
"""

import json
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import OracleAttacker
from repro.eval.episodes import run_episodes
from repro.obsv.cli import main
from repro.obsv.compare import (
    MetricSamples,
    StatConfig,
    cliffs_delta,
    compare_cells,
    compare_metric_snapshots,
    compare_runs,
    holm_bonferroni,
    load_run,
    metric_snapshot,
)
from repro.obsv.dashboard import build_dashboard
from repro.obsv.watch import (
    WatchState,
    load_baseline_metrics,
    metric_drift,
)
from repro.telemetry.trace import TraceWriter

pytestmark = pytest.mark.obsv

BASELINE = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "BASELINE_metrics.json"
)


def record_run(path, seed=0, n=6):
    writer = TraceWriter(path, context=None)
    run_episodes(
        lambda w: ModularAgent(w.road),
        lambda: OracleAttacker(budget=1.0),
        n_episodes=n,
        seed=seed,
        trace=writer,
    )
    writer.close()
    return path


@pytest.fixture(scope="module")
def demo_runs(tmp_path_factory):
    """Two seed-matched demo runs + one on disjoint seeds."""
    base = tmp_path_factory.mktemp("compare-demo")
    a = record_run(base / "run_a.jsonl", seed=0)
    b = record_run(base / "run_b.jsonl", seed=0)
    c = record_run(base / "run_c.jsonl", seed=50)
    return a, b, c


# -- engine ---------------------------------------------------------------------------


def shifted_cells(shift=0.0, seeds=(0, 1, 2, 3, 4, 5)):
    cell = MetricSamples(key="m|o|1.00")
    for seed in seeds:
        cell.n += 1
        cell.seeds.append(seed)
        cell.values.setdefault("steps", {})[seed] = 100.0 + seed + shift
    return cell


class TestEngine:
    def test_deterministic_under_fixed_seed(self, demo_runs):
        a, b, _ = demo_runs
        episodes_a, _, _ = load_run(a)
        episodes_b, _, _ = load_run(b)
        stat = StatConfig(stat_seed=7)
        first = compare_runs(episodes_a, episodes_b, stat=stat).to_json()
        second = compare_runs(episodes_a, episodes_b, stat=stat).to_json()
        assert first == second

    def test_different_stat_seed_moves_the_cis(self):
        a, b = shifted_cells(), shifted_cells(shift=3.0, seeds=(6, 7, 8, 9))
        ci_7 = compare_cells(a, b, StatConfig(stat_seed=7, resamples=200))
        ci_8 = compare_cells(a, b, StatConfig(stat_seed=8, resamples=200))
        assert [m.ci for m in ci_7.metrics] != [m.ci for m in ci_8.metrics]

    def test_paired_auto_detection(self, demo_runs):
        a, b, c = demo_runs
        episodes_a, _, _ = load_run(a)
        episodes_b, _, _ = load_run(b)
        episodes_c, _, _ = load_run(c)
        paired = compare_runs(episodes_a, episodes_b)
        assert paired.cells and all(cell.paired for cell in paired.cells)
        unpaired = compare_runs(episodes_a, episodes_c)
        assert unpaired.cells and not any(c.paired for c in unpaired.cells)

    def test_self_compare_finds_nothing(self, demo_runs):
        a, b, _ = demo_runs
        episodes_a, _, _ = load_run(a)
        episodes_b, _, _ = load_run(b)
        comparison = compare_runs(episodes_a, episodes_b)
        assert comparison.significant == []
        for cell in comparison.cells:
            for metric in cell.metrics:
                assert metric.diff == 0.0

    def test_large_shift_is_significant(self):
        comparison = compare_cells(
            shifted_cells(shift=50.0), shifted_cells(), StatConfig()
        )
        (steps,) = [m for m in comparison.metrics if m.metric == "steps"]
        assert steps.significant
        assert steps.diff == pytest.approx(50.0)
        assert steps.ci[0] > 0.0

    def test_cliffs_delta_bounds_and_sign(self):
        assert cliffs_delta(
            np.array([2.0, 3.0]), np.array([0.0, 1.0])
        ) == 1.0
        assert cliffs_delta(
            np.array([0.0]), np.array([5.0])
        ) == -1.0
        assert cliffs_delta(np.array([]), np.array([1.0])) == 0.0

    def test_holm_stops_at_first_failure(self):
        flags = holm_bonferroni([0.001, 0.04, 0.9], alpha=0.05)
        assert flags == [True, False, False]

    def test_unmatched_cells_listed_not_dropped(self, demo_runs):
        a, _, _ = demo_runs
        episodes_a, _, _ = load_run(a)
        comparison = compare_runs(episodes_a, [])
        assert comparison.cells == []
        assert comparison.unmatched_a  # the demo cell, reported


# -- CLI ------------------------------------------------------------------------------


class TestCompareCli:
    def test_json_bit_identical_under_stat_seed(self, demo_runs, capsys):
        a, b, _ = demo_runs
        argv = [
            "compare", str(a), str(b), "--json", "--stat-seed", "7",
            "--resamples", "500",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        report = json.loads(first)
        assert report["stat"]["stat_seed"] == 7
        assert report["cells"]

    def test_markdown_report(self, demo_runs, capsys):
        a, _, c = demo_runs
        assert main(["compare", str(a), str(c)]) == 0
        out = capsys.readouterr().out
        assert "Run comparison" in out
        assert "unpaired" in out

    def test_html_report(self, demo_runs, capsys):
        a, b, _ = demo_runs
        assert main(["compare", str(a), str(b), "--html"]) == 0
        assert "<html" in capsys.readouterr().out.lower()

    def test_missing_source_degrades(self, demo_runs, tmp_path, capsys):
        a, _, _ = demo_runs
        rc = main(["compare", str(a), str(tmp_path / "missing.jsonl")])
        captured = capsys.readouterr()
        assert rc == 1
        assert "no complete episodes" in captured.err


# -- regression gate ------------------------------------------------------------------


class TestMetricsGate:
    @pytest.fixture()
    def snapshot_path(self, demo_runs, tmp_path, capsys):
        a, _, _ = demo_runs
        out = tmp_path / "snap.json"
        assert main(
            ["compare", str(a), "--snapshot", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        return out

    def test_self_gate_passes(self, snapshot_path, capsys):
        rc = main(
            [
                "regress", str(snapshot_path), str(snapshot_path),
                "--metrics", "--min-n", "1",
            ]
        )
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_drift_breaches(self, snapshot_path, tmp_path, capsys):
        drifted = json.loads(snapshot_path.read_text(encoding="utf-8"))
        for cell in drifted["cells"].values():
            stats = cell["metrics"]["steps"]
            stats["mean"] += 100.0
        current = tmp_path / "drifted.json"
        current.write_text(json.dumps(drifted), encoding="utf-8")
        rc = main(
            [
                "regress", str(current), str(snapshot_path),
                "--metrics", "--min-n", "1", "--json",
            ]
        )
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert any(
            b["metric"] == "steps" for b in report["breaches"]
        )

    def test_committed_baseline_self_passes(self, capsys):
        assert BASELINE.is_file(), "committed baseline must exist"
        rc = main(
            ["regress", str(BASELINE), str(BASELINE), "--metrics"]
        )
        assert rc == 0
        capsys.readouterr()

    def test_committed_baseline_detects_drift(self, tmp_path, capsys):
        baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
        drifted = json.loads(BASELINE.read_text(encoding="utf-8"))
        cell = next(iter(drifted["cells"]))
        drifted["cells"][cell]["metrics"]["steps"]["mean"] += 1000.0
        current = tmp_path / "drift.json"
        current.write_text(json.dumps(drifted), encoding="utf-8")
        rc = main(["regress", str(current), str(BASELINE), "--metrics"])
        assert rc == 1
        capsys.readouterr()
        breaches = compare_metric_snapshots(drifted, baseline)
        assert [b.metric for b in breaches] == ["steps"]
        assert breaches[0].kind == "metric"

    def test_non_snapshot_baseline_refused(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"kind": "other"}', encoding="utf-8")
        with pytest.raises(SystemExit, match="not a metric snapshot"):
            main(
                ["regress", str(bogus), str(bogus), "--metrics"]
            )


# -- hardening ------------------------------------------------------------------------


class TestHardening:
    def test_dashboard_empty_dir(self, tmp_path, capsys):
        assert main(["dashboard", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "No episode traces" in out

    def test_dashboard_without_metrics_files(self, demo_runs, tmp_path):
        a, _, _ = demo_runs
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "episodes.jsonl").write_text(
            a.read_text(encoding="utf-8"), encoding="utf-8"
        )
        # No EXPERIMENTS_metrics.json / BENCH_telemetry.json anywhere.
        text = build_dashboard(run_dir)
        assert "Run provenance" in text  # stamped traces surface it

    def test_compare_empty_dir_degrades(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        rc = main(["compare", str(empty), str(empty)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "no complete episodes" in captured.err

    def test_load_run_missing_source(self, tmp_path):
        episodes, provenance, label = load_run(tmp_path / "nope.jsonl")
        assert episodes == [] and provenance is None

    def test_watch_baseline_unreadable(self, tmp_path):
        missing = tmp_path / "missing.json"
        assert load_baseline_metrics(missing) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert load_baseline_metrics(bad) is None
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"kind": "bench"}', encoding="utf-8")
        assert load_baseline_metrics(wrong) is None


# -- watch drift annotations ----------------------------------------------------------


def _live_state(n=6, collisions=0):
    state = WatchState()
    for episode in range(n):
        state.ingest(
            {
                "event": "episode_start", "episode": episode,
                "victim": "modular", "attacker": "oracle", "budget": 1.0,
            }
        )
        state.ingest(
            {
                "event": "episode_end", "episode": episode,
                "steps": 120, "duration": 12.0,
                "collision": "SIDE" if episode < collisions else None,
            }
        )
    return state


class TestWatchDrift:
    BASELINE_DOC = {
        "kind": "metrics",
        "schema": 1,
        "cells": {
            "modular|oracle|1.00": {
                "n": 6,
                "metrics": {
                    "collision": {"n": 6, "mean": 0.0, "ci": [0.0, 0.2]},
                    "steps": {"n": 6, "mean": 120.0, "ci": [110.0, 130.0]},
                },
            }
        },
    }

    def test_in_ci_cells_not_flagged(self):
        assert metric_drift(_live_state(collisions=1), self.BASELINE_DOC) == []

    def test_out_of_ci_cell_flagged(self):
        rows = metric_drift(_live_state(collisions=6), self.BASELINE_DOC)
        assert [(r[0], r[1]) for r in rows] == [
            ("modular|oracle|1.00", "collision")
        ]
        _, _, mean, n, lo, hi = rows[0]
        assert mean == 1.0 and n == 6 and (lo, hi) == (0.0, 0.2)

    def test_min_n_guard(self):
        state = _live_state(n=2, collisions=2)
        assert metric_drift(state, self.BASELINE_DOC, min_n=5) == []

    def test_render_status_annotates(self):
        from repro.obsv.watch import render_status

        text = render_status(
            _live_state(collisions=6), "trace.jsonl",
            baseline=self.BASELINE_DOC,
        )
        assert "[DRIFT]" in text
        clean = render_status(
            _live_state(collisions=1), "trace.jsonl",
            baseline=self.BASELINE_DOC,
        )
        assert "metric drift vs baseline: none" in clean


# -- serve surfacing ------------------------------------------------------------------


@pytest.mark.serve
class TestServeCompare:
    @pytest.fixture()
    def server(self, demo_runs, tmp_path):
        from repro.obsv.serve import DashboardServer

        a, b, _ = demo_runs
        run_dir = tmp_path / "served"
        run_dir.mkdir()
        for source in (a, b):
            (run_dir / source.name).write_text(
                source.read_text(encoding="utf-8"), encoding="utf-8"
            )
        server = DashboardServer(run_dir, poll=0.05).start()
        yield server
        server.stop()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.read().decode("utf-8")

    def test_picker_lists_sources(self, server):
        html = self._get(server.url + "compare")
        assert "Compare runs" in html
        assert "run_a.jsonl" in html and "run_b.jsonl" in html

    def test_api_inventory(self, server):
        inventory = json.loads(self._get(server.url + "api/compare"))
        assert "run_a.jsonl" in inventory["sources"]

    def test_comparison_pages(self, server):
        url = server.url + "compare?a=run_a.jsonl&b=run_b.jsonl"
        html = self._get(url)
        assert "Run comparison" in html
        report = json.loads(
            self._get(
                server.url
                + "api/compare?a=run_a.jsonl&b=run_b.jsonl&stat_seed=7"
            )
        )
        assert report["stat"]["stat_seed"] == 7
        assert report["cells"]

    def test_unknown_source_is_404_not_path_read(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server.url + "compare?a=../../etc&b=run_a.jsonl")
        assert excinfo.value.code == 404
