"""Tests for trace loading, phase segmentation, and episode post-mortems."""

import math

import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import NullAttacker, OracleAttacker
from repro.core.injection import ACTIVE_THRESHOLD
from repro.eval.episodes import run_episode
from repro.obsv import analyze, load_episodes, segment_phases, split_episodes
from repro.obsv.forensics import strike_threshold
from repro.obsv.loader import select_episode
from repro.telemetry.trace import TraceWriter, validate_trace

pytestmark = pytest.mark.obsv


def oracle_episode(seed=3, budget=1.0):
    writer = TraceWriter()
    run_episode(
        lambda w: ModularAgent(w.road),
        attacker=OracleAttacker(budget=budget),
        seed=seed,
        trace=writer,
        episode_id=seed,
    )
    return writer.events


def make_tick(tick, delta, **extra):
    return {
        "event": "tick", "episode": 0, "tick": tick, "t": 0.1 * tick,
        "delta": delta, "x": 0.0, "y": 0.0, "yaw": 0.0, "speed": 16.0,
        **extra,
    }


class TestLoader:
    def test_split_groups_by_episode_and_order(self):
        writer = TraceWriter()
        for seed in (1, 2):
            run_episode(
                lambda w: ModularAgent(w.road),
                attacker=NullAttacker(),
                seed=seed,
                trace=writer,
                episode_id=seed,
            )
        episodes = split_episodes(writer.events)
        assert [e.episode for e in episodes] == [1, 2]
        for episode in episodes:
            assert episode.complete
            ticks = [t["tick"] for t in episode.ticks]
            assert ticks == sorted(ticks)

    def test_repeated_episode_id_opens_new_bucket(self):
        # Two sweeps sharing a seed (as examples/attack_demo.py does) must
        # not merge into one garbled episode.
        events = oracle_episode(seed=9) + oracle_episode(seed=9)
        episodes = split_episodes(events)
        assert [e.episode for e in episodes] == [9, 9]
        assert all(e.complete for e in episodes)
        assert len(episodes[0].ticks) == len(episodes[1].ticks)

    def test_non_episode_events_dropped(self):
        events = [
            {"event": "span", "name": "x", "start_s": 0.0, "duration_s": 1.0},
            {"event": "train_step", "loop": "sac", "step": 1},
        ]
        assert split_episodes(events) == []

    def test_load_episodes_skips_invalid_by_default(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            for event in oracle_episode():
                writer.emit(event.pop("event"), **event)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "bogus"}\n')
        episodes = load_episodes(path)
        assert len(episodes) == 1 and episodes[0].complete
        with pytest.raises(ValueError):
            load_episodes(path, strict=True)

    def test_select_episode(self):
        episodes = split_episodes(oracle_episode(seed=7))
        assert select_episode(episodes).episode == 7
        assert select_episode(episodes, "7").episode == 7
        with pytest.raises(KeyError):
            select_episode(episodes, "99")

    def test_new_optional_fields_are_schema_valid(self):
        events = oracle_episode()
        assert validate_trace(events) == []
        start = next(e for e in events if e["event"] == "episode_start")
        assert start["budget"] == 1.0
        assert start["scenario"] == "default"
        ticks = [e for e in events if e["event"] == "tick"]
        assert all("npc_gap" in t and "lateral" in t for t in ticks)
        assert any("ttc" in t for t in ticks)
        assert events[-1]["collision_with"] is not None


class TestSegmentation:
    def test_alternating_runs_merge(self):
        ticks = (
            [make_tick(i, 0.01) for i in range(1, 6)]
            + [make_tick(i, 0.9) for i in range(6, 11)]
            + [make_tick(i, 0.0) for i in range(11, 16)]
        )
        phases = segment_phases(ticks, strike_level=0.5)
        assert [p.kind for p in phases] == ["lurk", "strike", "lurk"]
        assert phases[1].start_tick == 6 and phases[1].end_tick == 10

    def test_short_lurk_gap_is_bridged(self):
        ticks = (
            [make_tick(1, 0.9), make_tick(2, 0.9)]
            + [make_tick(3, 0.0)]  # one quiet tick inside the strike
            + [make_tick(4, 0.9), make_tick(5, 0.9)]
        )
        phases = segment_phases(ticks, strike_level=0.5)
        assert [p.kind for p in phases] == ["strike"]
        assert phases[0].ticks == 5

    def test_long_lurk_gap_splits_strikes(self):
        ticks = (
            [make_tick(1, 0.9)]
            + [make_tick(i, 0.0) for i in range(2, 7)]
            + [make_tick(7, 0.9)]
        )
        phases = segment_phases(ticks, strike_level=0.5)
        assert [p.kind for p in phases] == ["strike", "lurk", "strike"]

    def test_empty_ticks(self):
        assert segment_phases([], 0.5) == []

    def test_strike_threshold_fallbacks(self):
        assert strike_threshold(1.0, []) == 0.5
        # No budget recorded: half the peak injection.
        assert strike_threshold(None, [0.02, 0.8]) == pytest.approx(0.4)
        # Tiny budgets floor at the active threshold.
        assert strike_threshold(0.05, []) == ACTIVE_THRESHOLD


class TestForensics:
    def test_oracle_attack_has_distinct_phases(self):
        episode = split_episodes(oracle_episode())[0]
        report = analyze(episode)
        kinds = {p.kind for p in report.phases}
        assert kinds == {"lurk", "strike"}
        assert report.strike_mean_delta > report.lurk_mean_delta
        assert report.struck
        assert report.collision == "SIDE"
        assert report.collision_with.startswith("npc")
        assert report.ticks_strike_to_collision is not None
        assert report.seconds_strike_to_collision == pytest.approx(
            0.1 * report.ticks_strike_to_collision
        )
        assert report.min_npc_gap is not None and report.min_npc_gap < 10.0
        assert report.min_ttc is not None and report.min_ttc > 0.0

    def test_nominal_episode_is_all_lurk(self):
        writer = TraceWriter()
        run_episode(
            lambda w: ModularAgent(w.road),
            seed=5,
            trace=writer,
            episode_id=5,
        )
        report = analyze(split_episodes(writer.events)[0])
        assert [p.kind for p in report.phases] == ["lurk"]
        assert not report.struck
        assert math.isnan(report.strike_mean_delta)
        assert report.collision is None

    def test_markdown_and_json_render(self):
        episode = split_episodes(oracle_episode())[0]
        report = analyze(episode)
        markdown = report.to_markdown(ticks=episode.ticks)
        assert "strike onset" in markdown
        assert "minimum safety margin" in markdown
        assert "|delta|" in markdown
        payload = report.to_json()
        assert payload["collision"] == "SIDE"
        assert isinstance(payload["phases"], list)

    def test_analyze_requires_ticks(self):
        episode = split_episodes(
            [{"event": "episode_start", "episode": 0, "seed": 0}]
        )[0]
        with pytest.raises(ValueError):
            analyze(episode)
