"""The profiling layer: self-time, sampler, flamegraphs, allocations,
FLOP accounting, profile sessions, and the CLI/regress integration."""

import json
import time
import tracemalloc

import numpy as np
import pytest

from repro.obsv.cli import main
from repro.obsv.prof import (
    ProfileConfig,
    ProfileSession,
    SamplingProfiler,
    attribute,
    build_tree,
    parse_mem_spec,
    render_html,
    spans_to_folded,
)
from repro.obsv.prof import selftime
from repro.obsv.prof.memory import MemoryProbe
from repro.obsv.prof.sampler import frame_label
from repro.obsv.prof.session import FlopSpanProbe, install_from_env
from repro.obsv.prof import session as session_mod
from repro.rl.nn import autograd
from repro.rl.nn.flops import FlopCounter
from repro.rl.nn.layers import Mlp
from repro.telemetry.spans import Tracer
from repro.telemetry.trace import validate_event

pytestmark = [pytest.mark.obsv, pytest.mark.profile]


def _busy(tracer, outer="episode", inner="world.tick", n=20, work_s=0.001):
    with tracer.span(outer):
        for _ in range(n):
            with tracer.span(inner):
                deadline = time.perf_counter() + work_s
                while time.perf_counter() < deadline:
                    pass


class TestSelfTime:
    def test_exact_self_time_from_schema2_snapshot(self):
        tracer = Tracer(enabled=True)
        _busy(tracer)
        rows = attribute(tracer.snapshot())
        by_path = {row.path: row for row in rows}
        child = by_path["episode/world.tick"]
        parent = by_path["episode"]
        # leaf: self == inclusive; parent: self == inclusive - child time
        assert child.self_s == pytest.approx(child.total_s)
        # abs=5e-6: snapshot() rounds totals to 6 decimals, so values
        # derived from several rounded fields can drift by ~1e-6 each
        assert parent.self_s == pytest.approx(
            parent.total_s - child.total_s, abs=5e-6
        )
        # summed self time reconstructs the root's inclusive total
        assert selftime.total_self_s(rows) == pytest.approx(
            parent.total_s, abs=5e-6
        )

    def test_schema1_fallback_derives_from_path_tree(self):
        spans = {
            "episode": {"count": 1, "total_s": 1.0},
            "episode/world.tick": {"count": 10, "total_s": 0.7},
        }
        by_path = {row.path: row for row in attribute(spans)}
        assert by_path["episode"].self_s == pytest.approx(0.3)
        assert by_path["episode/world.tick"].self_s == pytest.approx(0.7)

    def test_rows_sorted_by_self_time_and_markdown_renders(self):
        spans = {
            "a": {"count": 1, "total_s": 1.0, "self_total_s": 0.1},
            "b": {"count": 2, "total_s": 0.5, "self_total_s": 0.5},
        }
        rows = attribute(spans)
        assert [row.path for row in rows] == ["b", "a"]
        text = selftime.to_markdown(rows, top=1)
        assert "`b`" in text and "1 more span" in text


class TestSampler:
    def test_frame_label_dots_repro_modules(self):
        assert (
            frame_label("/x/src/repro/sim/world.py", "tick")
            == "repro.sim.world:tick"
        )
        assert frame_label("/usr/lib/python/queue.py", "get") == "queue:get"

    def test_collects_samples_from_busy_main_thread(self):
        profiler = SamplingProfiler(hz=500.0)
        with profiler:
            deadline = time.perf_counter() + 0.25
            while time.perf_counter() < deadline:
                sum(range(200))
        assert profiler.sample_count > 0
        folded = profiler.folded()
        assert folded and all(";" in stack for stack in folded)
        # this test function appears in the recorded stacks
        assert any(
            "test_collects_samples" in stack for stack in folded
        )
        text = profiler.folded_text()
        stack, count = text.splitlines()[0].rsplit(" ", 1)
        assert int(count) >= 1 and stack
        summary = profiler.summary()
        assert summary["samples"] == profiler.sample_count
        assert summary["duration_s"] > 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)


class TestFlamegraph:
    def test_build_tree_merges_and_sorts(self):
        tree = build_tree({"a;b;c": 5, "a;b;d": 3, "a;e": 2})
        assert tree["value"] == pytest.approx(10.0)
        (a,) = tree["children"]
        assert a["name"] == "a" and a["value"] == pytest.approx(10.0)
        assert [c["name"] for c in a["children"]] == ["b", "e"]

    def test_render_html_is_self_contained_and_parses(self, tmp_path):
        target = tmp_path / "flame.html"
        text = render_html({"a;b": 2.0, "a;c": 1.0}, path=target)
        assert target.read_text(encoding="utf-8") == text
        assert "<script src" not in text and "http" not in text.lower()
        start = text.index('type="application/json">') + len(
            'type="application/json">'
        )
        payload = json.loads(
            text[start:text.index("</script>", start)].replace("<\\/", "</")
        )
        assert payload["tree"]["value"] == pytest.approx(3.0)

    def test_spans_to_folded_uses_self_time(self):
        spans = {
            "episode": {"count": 1, "total_s": 1.0, "self_total_s": 0.25},
            "episode/tick": {
                "count": 5, "total_s": 0.75, "self_total_s": 0.75,
            },
        }
        folded = spans_to_folded(spans)
        assert folded == {
            "episode": pytest.approx(0.25),
            "episode;tick": pytest.approx(0.75),
        }


class TestMemory:
    def test_parse_mem_spec(self):
        assert parse_mem_spec(None) is False
        assert parse_mem_spec("0") is False
        assert parse_mem_spec("all") is None
        assert parse_mem_spec("1") is None
        assert parse_mem_spec("a, b") == {"a", "b"}

    def test_probe_tracks_only_opted_in_spans(self):
        probe = MemoryProbe({"agent.act"})
        tracer = Tracer(enabled=True)
        tracer.add_probe(probe)
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        try:
            keep = []
            with tracer.span("episode"):
                with tracer.span("agent.act"):
                    keep.append(bytearray(256 * 1024))
                with tracer.span("world.tick"):
                    keep.append(bytearray(64))
        finally:
            if not was_tracing:
                tracemalloc.stop()
        summary = probe.summary()
        # leaf-name opt-in matched the nested path; others were skipped
        assert set(summary) == {"episode/agent.act"}
        stats = summary["episode/agent.act"]
        assert stats["count"] == 1
        assert stats["net_total_kb"] >= 200.0
        assert stats["peak_max_kb"] >= stats["net_total_kb"]
        assert "net KB/call" in probe.to_markdown()


class TestFlopAccounting:
    def test_matmul_and_elementwise_bookkeeping(self):
        counter = FlopCounter()
        counter.matmul(4, 8, 2)
        assert counter.total_flops() == pytest.approx(2 * 4 * 8 * 2)
        counter.matmul(4, 8, 2, backward=True)
        assert counter.total_flops() == pytest.approx(6 * 4 * 8 * 2)
        counter.elementwise("relu_fwd", 100)
        assert counter.flops["relu_fwd"] == pytest.approx(100.0)
        assert counter.intensity() > 0.0
        snapshot = counter.snapshot()
        assert snapshot["total_flops"] == counter.total_flops()
        counter.reset()
        assert counter.total_flops() == 0.0

    def test_autograd_ops_count_forward_and_backward(self):
        counter = FlopCounter()
        counter.enable()
        try:
            a = autograd.Tensor(np.ones((3, 4)), requires_grad=True)
            b = autograd.Tensor(np.ones((4, 2)), requires_grad=True)
            out = (a @ b).relu()
            out.backward(np.ones((3, 2)))
        finally:
            counter.disable()
        assert counter.flops["matmul_fwd"] == pytest.approx(2 * 3 * 4 * 2)
        assert counter.flops["matmul_bwd"] == pytest.approx(4 * 3 * 4 * 2)
        assert counter.flops["relu_fwd"] == pytest.approx(6.0)
        assert counter.flops["relu_bwd"] == pytest.approx(6.0)
        assert autograd.FLOP_HOOK is None

    def test_forward_np_fast_path_counts(self):
        counter = FlopCounter()
        mlp = Mlp((6, 16, 3))
        x = np.zeros((5, 6))
        mlp.forward_np(x)  # disabled: nothing recorded
        assert counter.total_flops() == 0.0
        counter.enable()
        try:
            mlp.forward_np(x)
        finally:
            counter.disable()
        expected_matmul = 2 * 5 * 6 * 16 + 2 * 5 * 16 * 3
        assert counter.flops["matmul_fwd"] == pytest.approx(expected_matmul)
        assert counter.flops["add_fwd"] == pytest.approx(5 * 16 + 5 * 3)
        assert counter.flops["relu_fwd"] == pytest.approx(5 * 16)

    def test_flop_span_probe_attributes_inclusively(self):
        counter = FlopCounter()
        counter.enable()
        probe = FlopSpanProbe(counter)
        tracer = Tracer(enabled=True)
        tracer.add_probe(probe)
        mlp = Mlp((6, 16, 3))
        x = np.zeros((5, 6))
        try:
            with tracer.span("episode"):
                with tracer.span("agent.act"):
                    mlp.forward_np(x)
                with tracer.span("world.tick"):
                    pass  # no NN work: must not appear
        finally:
            counter.disable()
        summary = probe.summary()
        assert "episode/world.tick" not in summary
        act = summary["episode/agent.act"]
        outer = summary["episode"]
        assert act["flops"] == pytest.approx(outer["flops"])
        assert act["flops"] == pytest.approx(counter.total_flops())
        assert act["mflops_per_s"] > 0.0


class TestProfileSession:
    def test_config_from_env(self):
        config = ProfileConfig.from_env(
            {"REPRO_PROF_HZ": "50", "REPRO_PROF_MEM": "agent.act"}
        )
        assert config.hz == 50.0 and config.mem == {"agent.act"}
        assert ProfileConfig.from_env({}).hz == 0.0
        assert ProfileConfig.from_env({"REPRO_PROF_HZ": "junk"}).hz == 0.0

    def test_session_report_covers_wall_clock(self):
        tracer = Tracer(enabled=False)
        session = ProfileSession(
            ProfileConfig(hz=0.0, mem=False), tracer=tracer, reset=True
        )
        session.start()
        _busy(tracer, n=40, work_s=0.002)
        report = session.stop()
        assert not tracer.enabled  # restored
        coverage = report.coverage()
        # the busy loop dominates the session: self time sums to within
        # a few percent of wall clock (the ±5% acceptance check)
        assert coverage["ratio"] == pytest.approx(1.0, abs=0.05)
        assert coverage["self_total_s"] == pytest.approx(
            coverage["root_total_s"], abs=5e-6  # 6-decimal snapshot rounding
        )

    def test_report_bundle_and_trace_events(self, tmp_path):
        tracer = Tracer(enabled=False)
        config = ProfileConfig(hz=200.0, mem=None, flops=True)
        session = ProfileSession(config, tracer=tracer, reset=True)
        session.start()
        mlp = Mlp((6, 16, 3))
        with tracer.span("episode"):
            for _ in range(30):
                with tracer.span("agent.act"):
                    mlp.forward_np(np.zeros((5, 6)))
                with tracer.span("world.tick"):
                    time.sleep(0.001)
        report = session.stop()
        for event in report.trace_events():
            assert validate_event(event) == []
        paths = report.write(tmp_path)
        assert json.loads(paths["report"].read_text())["kind"] == "profile"
        html = paths["flamegraph"].read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>") and "</html>" in html
        markdown = paths["markdown"].read_text()
        assert "Self time" in markdown
        assert "MFLOP/s" in markdown
        assert "tracemalloc" in markdown

    def test_install_from_env_off_when_unset(self):
        assert install_from_env({}) is None
        assert install_from_env({"REPRO_PROF": "0"}) is None
        assert install_from_env({"REPRO_PROF": "off"}) is None

    def test_install_from_env_starts_and_is_idempotent(self):
        assert session_mod._ENV_SESSION is None  # no leak from other tests
        env = {"REPRO_PROF": "1"}
        session = install_from_env(env)
        try:
            assert session is not None and session.running
            assert install_from_env(env) is session
        finally:
            session.stop()
            session_mod._ENV_SESSION = None


class TestCliAndGates:
    def _snapshot(self):
        tracer = Tracer(enabled=True)
        _busy(tracer, n=25, work_s=0.001)
        return {
            "schema": 2,
            "wall_clock_s": 1.0,
            "spans": tracer.snapshot(),
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def test_profile_offline_markdown_and_json(self, tmp_path, capsys):
        snapshot_path = tmp_path / "BENCH_telemetry.json"
        snapshot_path.write_text(json.dumps(self._snapshot()))
        flame = tmp_path / "flame.html"
        assert main(
            ["profile", str(snapshot_path), "--flamegraph", str(flame)]
        ) == 0
        out = capsys.readouterr().out
        assert "Self time" in out and "`episode/world.tick`" in out
        assert flame.exists() and "</html>" in flame.read_text()

        assert main(["profile", str(snapshot_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "profile"
        assert payload["coverage"]["self_total_s"] > 0.0

    def test_profile_requires_input_or_demo(self):
        with pytest.raises(SystemExit):
            main(["profile"])

    def test_regress_self_time_gate_and_json_report(self, tmp_path, capsys):
        baseline = self._snapshot()
        current = json.loads(json.dumps(baseline))
        current["spans"]["episode/world.tick"]["self_mean_us"] *= 4.0
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))

        # clean compare passes, slowdown gates with a machine-readable row
        assert main(
            ["regress", str(base_path), str(base_path), "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

        assert main(
            ["regress", str(cur_path), str(base_path), "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        (breach,) = [
            b for b in payload["breaches"] if b["kind"] == "span_self"
        ]
        assert breach["span"] == "episode/world.tick"
        assert breach["metric"] == "self_mean_us"
        assert breach["current"] > breach["baseline"]
        assert breach["threshold"] == 1.5

    def test_regress_alloc_gate(self, tmp_path, capsys):
        baseline = self._snapshot()
        baseline["profile"] = {
            "memory": {
                "episode": {"net_mean_kb": 128.0, "peak_max_kb": 512.0}
            }
        }
        current = json.loads(json.dumps(baseline))
        current["profile"]["memory"]["episode"]["peak_max_kb"] = 2048.0
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        assert main(
            ["regress", str(cur_path), str(base_path), "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        (breach,) = payload["breaches"]
        assert breach["kind"] == "alloc"
        assert breach["metric"] == "peak_max_kb"


class TestEndToEndSmoke:
    def test_profile_demo_to_flamegraph_to_regress_gate(
        self, tmp_path, capsys
    ):
        """The acceptance loop: profile a live workload, render the
        flamegraph, then gate the fresh snapshot against itself."""
        flame = tmp_path / "flame.html"
        bundle = tmp_path / "bundle"
        assert main(
            [
                "profile", "--demo", "--episodes", "1", "--hz", "97",
                "--flamegraph", str(flame),
                "--report-dir", str(bundle), "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "profile"
        spans = payload["spans"]
        assert any(path.endswith(".act") for path in spans)
        # MFLOP/s is reported for the acting span (e2e or modular victim)
        assert payload["span_flops"]
        assert max(
            stats["mflops_per_s"] for stats in payload["span_flops"].values()
        ) > 0.0
        # flamegraph exists, is standalone HTML, and its payload parses
        html = flame.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        start = html.index('type="application/json">') + len(
            'type="application/json">'
        )
        tree = json.loads(
            html[start:html.index("</script>", start)].replace("<\\/", "</")
        )["tree"]
        assert tree["value"] > 0
        # the written bundle re-loads through the offline CLI path
        report_path = bundle / "PROFILE_report.json"
        assert main(["profile", str(report_path)]) == 0
        assert "Self time" in capsys.readouterr().out
        # and the fresh snapshot passes the regress gate against itself
        assert main(
            ["regress", str(report_path), str(report_path), "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True
