"""Crash-resilience tests for the observability plumbing.

Covers the satellites of the crash-safety work: torn-tail tolerance in
the trace reader (and everything stacked on it — the forensics loader
and SQLite ingest), lock-contention retry in :class:`TelemetryStore`,
and the ``verify-artifacts`` checkpoint audit subcommand.
"""

import json
import sqlite3

import numpy as np
import pytest

from repro.obsv.cli import main
from repro.obsv.loader import load_episodes
from repro.obsv.store import TelemetryStore
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import TraceWriter, read_trace
from repro.utils.serialization import save_checkpoint

pytestmark = pytest.mark.obsv


def write_torn_trace(path, events=6):
    """A healthy JSONL trace whose final line was torn by a crash."""
    with TraceWriter(path) as writer:
        writer.emit("episode_start", episode=1, seed=7, attacker="none")
        for tick in range(events):
            writer.emit(
                "tick", episode=1, tick=tick, t=tick * 0.05, delta=0.05,
                x=float(tick), y=0.0, yaw=0.0, speed=1.0,
            )
        writer.emit(
            "episode_end", episode=1, steps=events, duration=events * 0.05,
            collision="NONE",
        )
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"event": "tick", "episode": 1, "tick": 99, "x": 1')
    return path


class TestTornTrace:
    def test_read_trace_skips_and_counts_torn_tail(self, tmp_path):
        path = write_torn_trace(tmp_path / "trace.jsonl")
        get_registry().reset()
        try:
            events = read_trace(path)
            assert len(events) == 8  # start + 6 ticks + end; tail dropped
            assert all(event["event"] != "tick" or event["tick"] != 99
                       for event in events)
            counter = get_registry().counter("trace_torn_lines_total")
            assert counter.value == 1
        finally:
            get_registry().reset()

    def test_read_trace_strict_still_raises(self, tmp_path):
        path = write_torn_trace(tmp_path / "trace.jsonl")
        with pytest.raises(json.JSONDecodeError):
            read_trace(path, strict=True)

    def test_load_episodes_survives_torn_tail(self, tmp_path):
        path = write_torn_trace(tmp_path / "trace.jsonl")
        episodes = load_episodes(path)
        assert len(episodes) == 1
        assert episodes[0].complete
        assert len(episodes[0].ticks) == 6

    def test_ingest_trace_survives_torn_tail(self, tmp_path):
        path = write_torn_trace(tmp_path / "trace.jsonl")
        with TelemetryStore(tmp_path / "obsv.sqlite") as store:
            info = store.ingest_trace(path)
            assert info.events == 8
            ticks = store.events(kind="tick")
            assert len(ticks) == 6


class TestLockRetry:
    def test_write_retries_until_lock_clears(self, tmp_path):
        delays = []
        store = TelemetryStore(
            tmp_path / "obsv.sqlite",
            lock_retries=5,
            lock_backoff=0.01,
            sleep=delays.append,
        )
        # A second connection holds the write lock for the first attempts.
        rival = sqlite3.connect(str(store.path), isolation_level=None)
        rival.execute("BEGIN IMMEDIATE")
        attempts = []

        def nosy_sleep(delay):
            delays.append(delay)
            if len(delays) >= 2:
                rival.execute("COMMIT")  # lock clears before attempt 3

        store._sleep = nosy_sleep
        try:
            store.set_meta("winner", "yes")
        finally:
            rival.close()
            store.close()
        assert store  # reached: no exception escaped
        assert delays == [0.01, 0.02]  # exponential backoff observed
        check = sqlite3.connect(str(tmp_path / "obsv.sqlite"))
        value = check.execute(
            "SELECT value FROM meta WHERE key = 'winner'"
        ).fetchone()[0]
        check.close()
        assert value == "yes"

    def test_write_gives_up_after_budget(self, tmp_path):
        delays = []
        store = TelemetryStore(
            tmp_path / "obsv.sqlite",
            lock_retries=3,
            lock_backoff=0.01,
            sleep=delays.append,
        )
        rival = sqlite3.connect(str(store.path), isolation_level=None)
        rival.execute("BEGIN IMMEDIATE")
        try:
            with pytest.raises(sqlite3.OperationalError):
                store.set_meta("never", "lands")
        finally:
            rival.execute("ROLLBACK")
            rival.close()
            store.close()
        assert delays == [0.01, 0.02, 0.04]


class TestVerifyArtifactsCli:
    def _populate(self, root):
        save_checkpoint(root / "good", {"w": np.ones(4)})
        with open(root / "legacy.npz", "wb") as handle:
            np.savez(handle, w=np.ones(2))
        corrupt = save_checkpoint(root / "sub" / "torn", {"w": np.ones(400)})
        corrupt.write_bytes(corrupt.read_bytes()[:80])
        return root

    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        save_checkpoint(tmp_path / "good", {"w": np.ones(4)})
        assert main(["verify-artifacts", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_corruption_exits_nonzero_and_names_the_file(
        self, tmp_path, capsys
    ):
        self._populate(tmp_path)
        assert main(["verify-artifacts", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "torn.npz" in out and "CORRUPT" in out
        assert "legacy" in out

    def test_strict_flags_legacy(self, tmp_path, capsys):
        with open(tmp_path / "legacy.npz", "wb") as handle:
            np.savez(handle, w=np.ones(2))
        assert main(["verify-artifacts", str(tmp_path)]) == 0
        assert main(["verify-artifacts", str(tmp_path), "--strict"]) == 1

    def test_upgrade_rewrites_legacy_in_place(self, tmp_path, capsys):
        with open(tmp_path / "legacy.npz", "wb") as handle:
            np.savez(handle, w=np.arange(3.0))
        assert main(
            ["verify-artifacts", str(tmp_path), "--strict", "--upgrade"]
        ) == 0
        # Now checksummed: a second strict pass is clean.
        assert main(["verify-artifacts", str(tmp_path), "--strict"]) == 0
        from repro.utils.serialization import load_checkpoint

        arrays, _ = load_checkpoint(tmp_path / "legacy.npz")
        np.testing.assert_array_equal(arrays["w"], np.arange(3.0))

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["verify-artifacts", str(tmp_path / "nope")])
