"""``obsv serve``: HTTP dashboard, JSON query API, SSE stream, shutdown.

Everything runs against an ephemeral localhost port with a tiny
hand-written two-shard run directory, so the whole module stays well
inside the tier-1 time budget.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obsv.serve import DashboardServer, EventBus, json_safe
from repro.telemetry.trace import TraceWriter

pytestmark = [pytest.mark.obsv, pytest.mark.serve]


def _write_shard(directory, worker, n_ticks=3):
    with TraceWriter(
        directory / f"trace.w{worker}.jsonl", context=None
    ) as writer:
        writer.emit(
            "episode_start", episode=worker, seed=worker,
            run="srv-run", worker=worker, pid=1000 + worker,
        )
        for tick in range(1, n_ticks + 1):
            writer.emit(
                "tick", episode=worker, tick=tick, t=0.1 * tick,
                delta=0.0, x=1.0, y=0.0, yaw=0.0, speed=10.0,
                run="srv-run", worker=worker, pid=1000 + worker,
            )
        writer.emit(
            "episode_end", episode=worker, steps=n_ticks,
            duration=0.1 * n_ticks, run="srv-run", worker=worker,
            pid=1000 + worker,
        )


@pytest.fixture()
def run_dir(tmp_path):
    for worker in (0, 1):
        _write_shard(tmp_path, worker)
    return tmp_path


@pytest.fixture()
def server(run_dir):
    server = DashboardServer(run_dir, poll=0.05).start()
    yield server
    server.stop()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


def _get_json(url):
    return json.loads(_get(url))


class TestHTTP:
    def test_ephemeral_port_allocated(self, server):
        assert server.port != 0
        assert server.url.startswith("http://127.0.0.1:")

    def test_dashboard_html(self, server):
        html = _get(server.url)
        assert "<html" in html.lower()

    def test_dashboard_markdown(self, server):
        text = _get(server.url + "dashboard.md")
        assert "#" in text

    def test_status_counts_both_shards(self, server):
        status = _get_json(server.url + "api/status")
        assert status["runs"] == 2
        assert status["events"] == 10
        assert status["live"] is True

    def test_runs_inventory_labels_workers(self, server):
        runs = _get_json(server.url + "api/runs")
        assert [r["worker"] for r in runs] == [0, 1]
        assert all(r["events"] == 5 for r in runs)

    def test_events_endpoint_filters_by_worker(self, server):
        events = _get_json(
            server.url + "api/events?kind=tick&worker=1"
        )
        assert len(events) == 3
        assert {e["worker"] for e in events} == {1}

    def test_series_endpoint(self, server):
        payload = _get_json(
            server.url + "api/series?field=speed&kind=tick"
        )
        assert payload["values"] == [10.0] * 6

    def test_aggregate_endpoint_groups_by_worker(self, server):
        payload = _get_json(
            server.url
            + "api/aggregate?field=tick&agg=count&group_by=worker"
        )
        assert sorted(payload["rows"]) == [[0, 3], [1, 3]]

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "no/such/route")
        assert err.value.code == 404

    def test_bad_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "api/series")  # missing ?field=
        assert err.value.code == 400

    def test_flamegraph_404_without_snapshot(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "flamegraph")
        assert err.value.code == 404

    def test_store_only_server_has_no_stream(self, run_dir):
        with DashboardServer(run_dir) as first:
            pass  # builds + ingests <dir>/obsv.sqlite
        del first
        store_path = run_dir / "obsv.sqlite"
        # Point at the bare store after hiding the run directory link.
        with DashboardServer(store_path) as server:
            status = _get_json(server.url + "api/status")
            assert status["events"] == 10


class TestSSE:
    def test_streams_appended_event_and_closes_cleanly(self, server,
                                                       run_dir):
        frames = []
        ready = threading.Event()

        def listen():
            request = urllib.request.urlopen(
                server.url + "events", timeout=10
            )
            for raw in request:
                line = raw.decode("utf-8").strip()
                if line == "event: hello":
                    ready.set()
                if line.startswith("data:") and "train_step" in line:
                    frames.append(
                        json.loads(line.split(":", 1)[1].strip())
                    )
                    break

        thread = threading.Thread(target=listen, daemon=True)
        thread.start()
        assert ready.wait(timeout=10), "no SSE hello frame"
        with TraceWriter(run_dir / "trace.w1.jsonl", context=None) as w:
            w.emit("train_step", loop="demo", step=7, reward=0.5)
        thread.join(timeout=10)
        assert not thread.is_alive(), "no SSE data frame arrived"
        (event,) = frames
        assert event["step"] == 7
        assert event["worker"] == 1  # stamped from the shard filename

    def test_watchdog_alert_streams_as_alert_frame(self, server, run_dir):
        alerts = []
        ready = threading.Event()

        def listen():
            request = urllib.request.urlopen(
                server.url + "events", timeout=10
            )
            is_alert = False
            for raw in request:
                line = raw.decode("utf-8").strip()
                if line == "event: hello":
                    ready.set()
                elif line == "event: alert":
                    is_alert = True
                elif line.startswith("data:") and is_alert:
                    alerts.append(
                        json.loads(line.split(":", 1)[1].strip())
                    )
                    break

        thread = threading.Thread(target=listen, daemon=True)
        thread.start()
        assert ready.wait(timeout=10), "no SSE hello frame"
        with TraceWriter(run_dir / "trace.w0.jsonl", context=None) as w:
            w.emit(
                "update_health", loop="sac", step=1, update=1,
                critic_loss=float("nan"),
            )
        thread.join(timeout=10)
        assert not thread.is_alive(), "no alert frame arrived"
        (alert,) = alerts
        assert alert["rule"] == "nan_loss"
        assert alert["loop"] == "sac@w0"  # tagged with the worker id
        assert alert["worker"] == 0

    def test_new_shard_appearing_mid_run_is_picked_up(self, server,
                                                      run_dir):
        frames = []
        ready = threading.Event()

        def listen():
            request = urllib.request.urlopen(
                server.url + "events", timeout=10
            )
            for raw in request:
                line = raw.decode("utf-8").strip()
                if line == "event: hello":
                    ready.set()
                if line.startswith("data:") and "train_step" in line:
                    frames.append(
                        json.loads(line.split(":", 1)[1].strip())
                    )
                    break

        thread = threading.Thread(target=listen, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        with TraceWriter(run_dir / "trace.w9.jsonl", context=None) as w:
            w.emit("train_step", loop="late", step=1)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert frames[0]["worker"] == 9


class TestHelpers:
    def test_json_safe_stringifies_non_finite(self):
        safe = json_safe(
            {"a": float("nan"), "b": [float("inf"), 1.5], "c": "x"}
        )
        assert safe == {"a": "nan", "b": ["inf", 1.5], "c": "x"}
        json.dumps(safe, allow_nan=False)  # strict-parseable

    def test_event_bus_drops_messages_for_stalled_clients_only(self):
        bus = EventBus(max_queue=1)
        fast, slow = bus.subscribe(), bus.subscribe()
        bus.publish({"n": 1})
        assert slow.get_nowait() == {"n": 1}
        bus.publish({"n": 2})  # fast queue full: dropped there only
        assert slow.get_nowait() == {"n": 2}
        assert fast.qsize() == 1
        bus.unsubscribe(fast)
        bus.unsubscribe(slow)
        assert bus.clients == 0
