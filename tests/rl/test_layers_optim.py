"""Tests for modules, MLPs and optimizers."""

import numpy as np
import pytest

from repro.rl.nn.autograd import Tensor
from repro.rl.nn.layers import Linear, Mlp, relu, tanh
from repro.rl.nn.optim import Adam, Sgd


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_gradients_flow(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(3, 2.0))

    def test_dims(self):
        layer = Linear(7, 2)
        assert layer.in_dim == 7
        assert layer.out_dim == 2


class TestMlp:
    def test_forward_shapes(self):
        mlp = Mlp((6, 16, 16, 2), rng=np.random.default_rng(1))
        out = mlp(Tensor(np.zeros((3, 6))))
        assert out.shape == (3, 2)

    def test_forward_np_matches_autodiff(self):
        mlp = Mlp(
            (5, 8, 4), activation=relu, output_activation=tanh,
            rng=np.random.default_rng(2),
        )
        x = np.random.default_rng(3).normal(size=(7, 5))
        np.testing.assert_allclose(mlp.forward_np(x), mlp(Tensor(x)).data)

    def test_hidden_features_count(self):
        mlp = Mlp((5, 8, 8, 2), rng=np.random.default_rng(0))
        features = mlp.hidden_features(Tensor(np.zeros((1, 5))))
        assert len(features) == 2
        assert features[0].shape == (1, 8)

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            Mlp((4,))

    def test_state_dict_roundtrip(self):
        a = Mlp((4, 8, 2), rng=np.random.default_rng(0))
        b = Mlp((4, 8, 2), rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = np.ones((1, 4))
        np.testing.assert_allclose(a.forward_np(x), b.forward_np(x))

    def test_state_dict_mismatch_raises(self):
        a = Mlp((4, 8, 2))
        state = a.state_dict()
        del state[next(iter(state))]
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_freeze(self):
        mlp = Mlp((4, 8, 2))
        mlp.freeze()
        assert mlp.trainable_parameters() == []
        assert len(mlp.parameters()) == 4


class TestOptimizers:
    @staticmethod
    def quadratic_problem(optimizer_cls, **kwargs):
        """Minimize ||x - target||^2; returns final distance."""
        target = np.array([1.0, -2.0, 3.0])
        x = Tensor(np.zeros(3), requires_grad=True)
        opt = optimizer_cls([x], **kwargs)
        for _ in range(400):
            loss = ((x - Tensor(target)) ** 2.0).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return float(np.max(np.abs(x.data - target)))

    def test_sgd_converges(self):
        assert self.quadratic_problem(Sgd, lr=0.05) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self.quadratic_problem(Sgd, lr=0.02, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert self.quadratic_problem(Adam, lr=0.05) < 1e-3

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.zeros(1), requires_grad=True)], lr=0.0)

    def test_skips_frozen_params(self):
        frozen = Tensor(np.zeros(2), requires_grad=False)
        opt = Adam([frozen], lr=0.1)
        assert opt.params == []

    def test_grad_clipping(self):
        x = Tensor(np.zeros(2), requires_grad=True)
        opt = Adam([x], lr=0.1, max_grad_norm=1.0)
        loss = (x * Tensor(np.array([1e6, 1e6]))).sum()
        loss.backward()
        opt._clip_grads()
        assert np.linalg.norm(x.grad) == pytest.approx(1.0)

    def test_step_without_grad_is_noop(self):
        x = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.step()
        np.testing.assert_allclose(x.data, np.ones(2))
