"""SAC learner tests: mechanics, checkpointing, and a toy control task."""

import numpy as np
import pytest

from repro.rl import Sac, SacConfig


class PointChaseEnv:
    """Minimal 1-D control task: drive the point onto the target.

    obs = (position, target); action in [-1, 1] moves the point by 0.5*a;
    reward = -|position - target| after the move. Episodes last 20 steps.
    """

    horizon = 20

    def __init__(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)
        self.position = 0.0
        self.target = 0.0
        self.steps = 0

    def reset(self) -> np.ndarray:
        self.position = float(self.rng.uniform(-1.0, 1.0))
        self.target = float(self.rng.uniform(-1.0, 1.0))
        self.steps = 0
        return self._obs()

    def step(self, action: np.ndarray):
        self.position += 0.5 * float(np.clip(action[0], -1.0, 1.0))
        self.steps += 1
        reward = -abs(self.position - self.target)
        done = self.steps >= self.horizon
        return self._obs(), reward, done

    def _obs(self) -> np.ndarray:
        return np.array([self.position, self.target])


def run_episode(env, sac, deterministic=True) -> float:
    obs = env.reset()
    total = 0.0
    done = False
    while not done:
        action = sac.act(obs, deterministic=deterministic)
        obs, reward, done = env.step(action)
        total += reward
    return total


@pytest.fixture(scope="module")
def small_config():
    return SacConfig(
        hidden=(32, 32),
        batch_size=64,
        buffer_capacity=10_000,
        start_steps=200,
        alpha=0.2,
    )


class TestSacMechanics:
    def test_act_bounds(self, small_config):
        sac = Sac(2, 1, small_config, rng=np.random.default_rng(0))
        for _ in range(20):
            action = sac.act(np.random.default_rng(1).normal(size=2))
            assert np.all(np.abs(action) <= 1.0)

    def test_random_action_bounds(self, small_config):
        sac = Sac(2, 1, small_config, rng=np.random.default_rng(0))
        action = sac.random_action()
        assert action.shape == (1,)
        assert np.all(np.abs(action) <= 1.0)

    def test_update_returns_finite_losses(self, small_config):
        sac = Sac(2, 1, small_config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        for _ in range(200):
            sac.observe(
                rng.normal(size=2), rng.uniform(-1, 1, 1), rng.normal(),
                rng.normal(size=2), False,
            )
        stats = sac.update()
        for key in ("critic_loss", "actor_loss", "alpha"):
            assert np.isfinite(stats[key])
        assert sac.total_updates == 1

    def test_polyak_moves_targets(self, small_config):
        sac = Sac(2, 1, small_config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        for _ in range(100):
            sac.observe(
                rng.normal(size=2), rng.uniform(-1, 1, 1), rng.normal(),
                rng.normal(size=2), False,
            )
        before = {
            k: v.copy() for k, v in sac.q1_target.state_dict().items()
        }
        for _ in range(5):
            sac.update()
        after = sac.q1_target.state_dict()
        assert any(
            not np.allclose(before[k], after[k]) for k in before
        )

    def test_alpha_autotune_changes_alpha(self, small_config):
        sac = Sac(2, 1, small_config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        for _ in range(300):
            sac.observe(
                rng.normal(size=2), rng.uniform(-1, 1, 1), rng.normal(),
                rng.normal(size=2), False,
            )
        before = sac.alpha
        for _ in range(30):
            sac.update()
        assert sac.alpha != before

    def test_state_dict_roundtrip(self, small_config):
        sac = Sac(2, 1, small_config, rng=np.random.default_rng(0))
        clone = Sac(2, 1, small_config, rng=np.random.default_rng(9))
        clone.load_state_dict(sac.state_dict())
        obs = np.array([0.3, -0.7])
        np.testing.assert_allclose(
            sac.act(obs, deterministic=True), clone.act(obs, deterministic=True)
        )
        assert clone.alpha == pytest.approx(sac.alpha)


class TestSacLearnsToyTask:
    def test_improves_over_random(self, small_config):
        """After a short training run, SAC beats the untrained policy by a
        wide margin on the point-chase task."""
        rng = np.random.default_rng(42)
        sac = Sac(2, 1, small_config, rng=rng)
        env = PointChaseEnv(seed=0)
        eval_env = PointChaseEnv(seed=100)

        before = np.mean([run_episode(eval_env, sac) for _ in range(10)])

        obs = env.reset()
        for step in range(4000):
            if step < small_config.start_steps:
                action = sac.random_action()
            else:
                action = sac.act(obs)
            next_obs, reward, done = env.step(action)
            sac.observe(obs, action, reward, next_obs, False)
            obs = env.reset() if done else next_obs
            if step >= small_config.start_steps and step % 2 == 0:
                sac.update()

        after = np.mean([run_episode(eval_env, sac) for _ in range(10)])
        assert after > before + 2.0
        # Near-optimal play keeps the point close to the target: the best
        # possible score is bounded below by roughly -2 (approach time).
        assert after > -4.0
