"""Smoke tests for the SAC-based refinement paths (tiny step budgets).

These exercise the paper-literal SAC stages — driver refinement, attacker
refinement, and SAC adversarial fine-tuning — which the shipped artifacts
only use when ``--sac`` is passed, so that the code paths stay healthy.
"""

import numpy as np
import pytest

from repro.agents.e2e import EndToEndAgent
from repro.agents.e2e.training import (
    DriverTrainConfig,
    refine_driver_sac,
    train_driver,
)
from repro.agents.modular import ModularAgent
from repro.core import CameraAttackObservation
from repro.core.attack_env import AttackEnv
from repro.core.training import AttackTrainConfig, _sac_refine
from repro.defense import FinetuneConfig, adversarial_finetune_sac
from repro.rl.bc import BcConfig
from repro.rl.policy import SquashedGaussianPolicy
from repro.rl.sac import SacConfig


def tiny_sac(**overrides):
    defaults = dict(
        hidden=(16, 16),
        batch_size=16,
        buffer_capacity=2_000,
        start_steps=0,
        update_every=4,
    )
    defaults.update(overrides)
    return SacConfig(**defaults)


@pytest.fixture(scope="module")
def tiny_driver():
    config = DriverTrainConfig(
        bc_episodes=2, bc=BcConfig(epochs=3), sac_steps=0, eval_episodes=1
    )
    agent, _ = train_driver(config)
    return agent


class TestDriverSacRefinement:
    def test_refine_driver_sac_runs(self, tiny_driver):
        config = DriverTrainConfig(sac_steps=60, eval_episodes=1)
        config.sac = tiny_sac(hidden=tiny_driver.policy.hidden)
        policy, metrics = refine_driver_sac(
            tiny_driver.policy, config, np.random.default_rng(0)
        )
        assert policy is tiny_driver.policy  # refined in place
        assert "mean_return" in metrics

    def test_train_driver_with_sac_selection(self):
        config = DriverTrainConfig(
            bc_episodes=2,
            bc=BcConfig(epochs=2),
            sac_steps=40,
            eval_episodes=1,
        )
        config.sac = tiny_sac(hidden=(128, 128))
        agent, metrics = train_driver(config)
        assert isinstance(agent, EndToEndAgent)


class TestAttackerSacRefinement:
    def test_sac_refine_runs_in_attack_env(self):
        env = AttackEnv(
            lambda w: ModularAgent(w.road),
            CameraAttackObservation(),
            budget=1.0,
            rng=np.random.default_rng(1),
        )
        policy = SquashedGaussianPolicy(
            env.observation_dim, 1, (16, 16), np.random.default_rng(2)
        )
        config = AttackTrainConfig(sac_steps=50)
        config.sac = tiny_sac()
        _sac_refine(policy, env, config, np.random.default_rng(3))
        # Policy still produces valid actions afterwards.
        action = policy.act(np.zeros(env.observation_dim))
        assert abs(float(action[0])) <= 1.0


class TestSacAdversarialFinetune:
    def test_adversarial_finetune_sac_runs(self, tiny_driver):
        from repro.core import (
            InjectionChannel,
            InjectionChannelConfig,
            LearnedAttacker,
        )

        sensor = CameraAttackObservation()
        attack_policy = SquashedGaussianPolicy(
            sensor.observation_dim, 1, (8,), np.random.default_rng(4)
        )
        attacker = LearnedAttacker(
            attack_policy,
            sensor,
            channel=InjectionChannel(InjectionChannelConfig(budget=1.0)),
        )
        sac_config = DriverTrainConfig(sac_steps=40, eval_episodes=1)
        sac_config.sac = tiny_sac(hidden=tiny_driver.policy.hidden)
        tuned = adversarial_finetune_sac(
            tiny_driver,
            attacker,
            FinetuneConfig(rho=0.5, episodes=1),
            sac_config=sac_config,
        )
        assert isinstance(tuned, EndToEndAgent)
        assert "sac" in tuned.name
