"""Resumable-training tests: state round-trips and resume determinism.

The determinism tests are the in-process acceptance proof for crash-safe
training: each SAC loop is run uninterrupted (control), then run again
with an injected in-process crash (``raise@step=K``) followed by a
resume, and the two final snapshots must be bit-identical. The chaos
suite repeats the exercise with real SIGKILLs in subprocesses.
"""

import numpy as np
import pytest

from repro import faults
from repro.agents.e2e.training import DriverTrainConfig, refine_driver_sac
from repro.agents.modular import ModularAgent
from repro.core import CameraAttackObservation
from repro.core.attack_env import AttackEnv
from repro.core.training import AttackTrainConfig, _sac_refine
from repro.faults import FaultInjected
from repro.rl.checkpoint import (
    Snapshotter,
    TrainingHalted,
    capture,
    checkpoint_interval,
    load_state,
    restore,
    save_state,
)
from repro.rl.nn.layers import Mlp
from repro.rl.nn.optim import Adam, Sgd
from repro.rl.policy import SquashedGaussianPolicy
from repro.rl.replay import ReplayBuffer
from repro.rl.sac import Sac, SacConfig
from repro.sim.config import ScenarioConfig
from repro.telemetry.trace import TraceWriter
from repro.utils.serialization import save_checkpoint

#: Short episodes -> frequent boundaries -> frequent snapshot windows.
SCENARIO = ScenarioConfig(max_steps=25)
STEPS = 90
EVERY = 30
CRASH_AT = 61  # past at least one snapshot, short of the end


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset_active_plan()
    yield
    faults.reset_active_plan()


def tiny_sac(**overrides):
    defaults = dict(
        hidden=(16, 16),
        batch_size=16,
        buffer_capacity=2_000,
        start_steps=0,
        update_every=4,
    )
    defaults.update(overrides)
    return SacConfig(**defaults)


class TestOptimizerState:
    def _trained_adam(self):
        rng = np.random.default_rng(0)
        net = Mlp([4, 8, 2], rng=rng)
        opt = Adam(net.parameters(), lr=1e-3)
        for param in opt.params:
            param.grad = rng.standard_normal(param.data.shape)
        opt.step()
        return net, opt, rng

    def test_adam_roundtrip_continues_identically(self):
        net, opt, rng = self._trained_adam()
        state = opt.state_dict()
        weights = {k: v.copy() for k, v in net.state_dict().items()}

        net2 = Mlp([4, 8, 2], rng=np.random.default_rng(99))
        net2.load_state_dict(weights)
        opt2 = Adam(net2.parameters(), lr=1e-3)
        opt2.load_state_dict(state)

        grad = np.random.default_rng(5)
        for p1, p2 in zip(opt.params, opt2.params):
            g = grad.standard_normal(p1.data.shape)
            p1.grad, p2.grad = g.copy(), g.copy()
        opt.step()
        opt2.step()
        for k, v in net.state_dict().items():
            np.testing.assert_array_equal(v, net2.state_dict()[k], err_msg=k)

    def test_adam_shape_mismatch_rejected(self):
        _, opt, _ = self._trained_adam()
        state = opt.state_dict()
        state["m_0"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(state)

    def test_sgd_velocity_roundtrip(self):
        rng = np.random.default_rng(0)
        net = Mlp([3, 4, 1], rng=rng)
        opt = Sgd(net.parameters(), lr=0.1, momentum=0.9)
        for param in opt.params:
            param.grad = np.ones_like(param.data)
        opt.step()
        state = opt.state_dict()
        opt2 = Sgd(net.parameters(), lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        np.testing.assert_array_equal(opt2._velocity[0], opt._velocity[0])


class TestReplayState:
    def test_roundtrip_preserves_contents_and_cursor(self):
        rng = np.random.default_rng(3)
        buf = ReplayBuffer(8, obs_dim=2, action_dim=1)
        for i in range(11):  # wraps: index 3, size 8
            buf.add(np.full(2, i), [i * 0.1], float(i), np.full(2, i + 1), False)
        state = buf.state_dict()
        buf2 = ReplayBuffer(8, obs_dim=2, action_dim=1)
        buf2.load_state_dict(state)
        assert len(buf2) == len(buf) == 8
        assert buf2._index == buf._index == 3
        batch1 = buf.sample(4, np.random.default_rng(7))
        batch2 = buf2.sample(4, np.random.default_rng(7))
        for key in batch1:
            np.testing.assert_array_equal(batch1[key], batch2[key])

    def test_capacity_too_small_rejected(self):
        buf = ReplayBuffer(8, obs_dim=2, action_dim=1)
        for i in range(8):
            buf.add(np.zeros(2), [0.0], 0.0, np.zeros(2), False)
        small = ReplayBuffer(4, obs_dim=2, action_dim=1)
        with pytest.raises(ValueError, match="capacity"):
            small.load_state_dict(buf.state_dict())

    def test_obs_dim_mismatch_rejected(self):
        buf = ReplayBuffer(4, obs_dim=2, action_dim=1)
        buf.add(np.zeros(2), [0.0], 0.0, np.zeros(2), False)
        other = ReplayBuffer(4, obs_dim=3, action_dim=1)
        with pytest.raises(ValueError, match="obs dim"):
            other.load_state_dict(buf.state_dict())


class TestTrainStateRoundtrip:
    def _make_sac(self, seed):
        rng = np.random.default_rng(seed)
        sac = Sac(3, 1, tiny_sac(), rng=rng)
        for i in range(40):
            sac.observe(
                rng.standard_normal(3), rng.uniform(-1, 1, 1),
                float(i), rng.standard_normal(3), False,
            )
        for _ in range(3):
            sac.update()
        return sac, rng

    def test_capture_restore_save_load(self, tmp_path):
        sac, rng = self._make_sac(11)
        state = capture(sac, "test-loop", 57, 4, 9, rng)
        path = save_state(state, tmp_path / "snap")
        loaded = load_state(path)
        assert loaded.counters() == state.counters()
        assert loaded.rng_state == state.rng_state
        assert set(loaded.arrays) == set(state.arrays)

        sac2, rng2 = self._make_sac(99)  # different history entirely
        restore(loaded, sac2, rng2)
        assert sac2.total_updates == sac.total_updates
        assert rng2.bit_generator.state == rng.bit_generator.state
        # Both learners now produce identical updates.
        stats1 = sac.update()
        stats2 = sac2.update()
        assert stats1["critic_loss"] == stats2["critic_loss"]
        for k, v in sac.state_dict().items():
            np.testing.assert_array_equal(v, sac2.state_dict()[k], err_msg=k)

    def test_load_state_rejects_plain_checkpoint(self, tmp_path):
        from repro.utils.serialization import CheckpointCorruptError

        path = save_checkpoint(tmp_path / "plain", {"w": np.ones(2)})
        with pytest.raises(CheckpointCorruptError, match="train_state"):
            load_state(path)


class TestSnapshotter:
    def _state(self, sac, rng, step):
        return capture(sac, "loop", step, 0, 0, rng)

    def test_cadence_and_rotation(self, tmp_path):
        rng = np.random.default_rng(0)
        sac = Sac(2, 1, tiny_sac(), rng=rng)
        snap = Snapshotter(tmp_path, every=10, keep=2, loop="loop")
        for step in (0, 5, 12, 19, 24, 37, 50):
            snap.maybe_save(self._state(sac, rng, step))
        names = [p.name for p in snap.snapshots()]
        # Due at 12, 24, 37, 50; keep=2 retains the newest two.
        assert names == ["state_step00000037.npz", "state_step00000050.npz"]

    def test_latest_state_skips_corrupt_newest(self, tmp_path):
        rng = np.random.default_rng(0)
        sac = Sac(2, 1, tiny_sac(), rng=rng)
        snap = Snapshotter(tmp_path, every=1, keep=5, loop="loop")
        snap.save(self._state(sac, rng, 10))
        good = capture(sac, "loop", 20, 0, 0, rng)
        snap.save(good)
        newest = snap.save(self._state(sac, rng, 30))
        faults.truncate_tail(newest, drop_bytes=200)
        state = snap.latest_state()
        assert state is not None
        assert state.step == 20  # fell back past the torn file

    def test_latest_state_empty_dir(self, tmp_path):
        snap = Snapshotter(tmp_path / "none", every=1, keep=1, loop="loop")
        assert snap.latest_state() is None

    def test_write_failure_degrades_to_warning(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(0)
        sac = Sac(2, 1, tiny_sac(), rng=rng)
        snap = Snapshotter(tmp_path, every=1, keep=2, loop="loop")
        monkeypatch.setenv("REPRO_FAULTS", "enospc@save=0,count=99")
        faults.reset_active_plan()
        assert snap.save(self._state(sac, rng, 5)) is None  # no raise
        assert snap.snapshots() == []

    def test_alert_snapshots_excluded_from_resume(self, tmp_path):
        rng = np.random.default_rng(0)
        sac = Sac(2, 1, tiny_sac(), rng=rng)
        snap = Snapshotter(tmp_path, every=1, keep=5, loop="loop")
        snap.save(self._state(sac, rng, 10))
        snap.save(self._state(sac, rng, 99), tag="alert")
        state = snap.latest_state()
        assert state.step == 10

    def test_interval_env_override(self, monkeypatch):
        assert checkpoint_interval(25) == 25
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "40")
        assert checkpoint_interval(0) == 40
        assert checkpoint_interval(25) == 25  # explicit config wins


# -- resume determinism: the tentpole acceptance proof ------------------------------


def _final_state(ckpt_dir, loop):
    snaps = sorted((ckpt_dir / loop).glob("state_step*.npz"))
    assert snaps, f"no snapshots under {ckpt_dir / loop}"
    state = load_state(snaps[-1])
    assert state.final and state.step == STEPS
    return state


def _assert_bit_identical(a, b):
    assert a.counters() == b.counters()
    assert a.rng_state == b.rng_state
    assert set(a.arrays) == set(b.arrays)
    for key in a.arrays:
        np.testing.assert_array_equal(a.arrays[key], b.arrays[key], err_msg=key)


def _crash_then_resume(run, ckpt_dir, loop, monkeypatch):
    """Run ``run`` crashed at CRASH_AT, then resumed; control separately."""
    control_dir = ckpt_dir / "control"
    crashed_dir = ckpt_dir / "crashed"
    run(control_dir, resume=False)

    monkeypatch.setenv("REPRO_FAULTS", f"raise@step={CRASH_AT},loop={loop}")
    faults.reset_active_plan()
    with pytest.raises(FaultInjected):
        run(crashed_dir, resume=False)
    assert sorted((crashed_dir / loop).glob("state_step*.npz")), (
        "crash left no snapshot to resume from"
    )
    monkeypatch.delenv("REPRO_FAULTS")
    faults.reset_active_plan()
    run(crashed_dir, resume=True)

    _assert_bit_identical(
        _final_state(control_dir, loop), _final_state(crashed_dir, loop)
    )


class TestResumeDeterminism:
    def test_attack_loop(self, tmp_path, monkeypatch):
        def run(ckpt_dir, resume):
            rng = np.random.default_rng(42)
            env = AttackEnv(
                lambda w: ModularAgent(w.road),
                CameraAttackObservation(),
                budget=1.0,
                scenario=SCENARIO,
                rng=rng,
            )
            policy = SquashedGaussianPolicy(
                env.observation_dim, 1, (16, 16), np.random.default_rng(2)
            )
            config = AttackTrainConfig(sac_steps=STEPS)
            config.sac = tiny_sac(
                checkpoint_every=EVERY, checkpoint_dir=str(ckpt_dir),
                checkpoint_keep=10, resume=resume,
            )
            _sac_refine(policy, env, config, rng, trace=TraceWriter())

        _crash_then_resume(run, tmp_path, "sac-attack", monkeypatch)

    def test_driver_loop(self, tmp_path, monkeypatch):
        from repro.agents.e2e.observation import DrivingObservation

        def run(ckpt_dir, resume):
            rng = np.random.default_rng(42)
            policy = SquashedGaussianPolicy(
                DrivingObservation().observation_dim, 2, (16, 16),
                np.random.default_rng(2),
            )
            config = DriverTrainConfig(sac_steps=STEPS, eval_episodes=1)
            config.sac = tiny_sac(
                checkpoint_every=EVERY, checkpoint_dir=str(ckpt_dir),
                checkpoint_keep=10, resume=resume,
            )
            refine_driver_sac(
                policy, config, rng, trace=TraceWriter(), scenario=SCENARIO
            )

        _crash_then_resume(run, tmp_path, "sac-driver", monkeypatch)

    def test_finetune_loop(self, tmp_path, monkeypatch):
        from repro.agents.e2e import EndToEndAgent
        from repro.agents.e2e.observation import DrivingObservation
        from repro.core import (
            InjectionChannel,
            InjectionChannelConfig,
            LearnedAttacker,
        )
        from repro.defense import FinetuneConfig, adversarial_finetune_sac

        sensor = CameraAttackObservation()
        attack_policy = SquashedGaussianPolicy(
            sensor.observation_dim, 1, (8,), np.random.default_rng(4)
        )
        attacker = LearnedAttacker(
            attack_policy, sensor,
            channel=InjectionChannel(InjectionChannelConfig(budget=1.0)),
        )
        base = EndToEndAgent(
            SquashedGaussianPolicy(
                DrivingObservation().observation_dim, 2, (16, 16),
                np.random.default_rng(2),
            )
        )

        def run(ckpt_dir, resume):
            config = DriverTrainConfig(sac_steps=STEPS, eval_episodes=1)
            config.sac = tiny_sac(
                checkpoint_every=EVERY, checkpoint_dir=str(ckpt_dir),
                checkpoint_keep=10, resume=resume,
            )
            adversarial_finetune_sac(
                base, attacker, FinetuneConfig(rho=0.5, episodes=1),
                sac_config=config, scenario=SCENARIO,
            )

        _crash_then_resume(run, tmp_path, "sac-finetune", monkeypatch)


class TestWatchdogHalt:
    def test_nan_grads_halt_with_emergency_snapshot(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "nan_grads@update=3")
        faults.reset_active_plan()
        rng = np.random.default_rng(42)
        env = AttackEnv(
            lambda w: ModularAgent(w.road),
            CameraAttackObservation(),
            budget=1.0,
            scenario=SCENARIO,
            rng=rng,
        )
        policy = SquashedGaussianPolicy(
            env.observation_dim, 1, (16, 16), np.random.default_rng(2)
        )
        config = AttackTrainConfig(sac_steps=STEPS)
        config.sac = tiny_sac(
            checkpoint_every=EVERY, checkpoint_dir=str(tmp_path),
            halt_on_alert=True,
        )
        trace = TraceWriter()
        with pytest.raises(TrainingHalted) as excinfo:
            _sac_refine(policy, env, config, rng, trace=trace)
        halted = excinfo.value
        assert halted.alert.rule == "nan_loss"
        assert halted.checkpoint is not None
        assert halted.checkpoint.exists()
        assert "state_alert_" in halted.checkpoint.name
        assert str(halted.checkpoint) in str(halted)
        # The alert also landed in the trace for post-mortem tooling.
        alerts = [e for e in trace.events if e["event"] == "alert"]
        assert alerts and alerts[0]["severity"] == "critical"
