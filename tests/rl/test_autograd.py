"""Gradient-correctness tests for the autodiff engine.

Every op is validated against central finite differences, plus a few
hypothesis property tests on broadcasting and accumulation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.nn.autograd import Tensor, concat, gaussian_log_prob, minimum


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=float)
    flat = grad.ravel()
    x_flat = x.ravel()
    for i in range(x.size):
        original = x_flat[i]
        x_flat[i] = original + eps
        up = fn(x.reshape(x.shape))
        x_flat[i] = original - eps
        down = fn(x.reshape(x.shape))
        x_flat[i] = original
        flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_op(op, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autodiff and numeric gradients for ``scalar = op(x).sum()``."""
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()

    def scalar_fn(arr):
        return float(op(Tensor(arr)).sum().data)

    expected = numeric_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


RNG = np.random.default_rng(7)
X = RNG.normal(size=(4, 3))


class TestElementwiseGradients:
    def test_add_scalar(self):
        check_op(lambda t: t + 3.0, X)

    def test_mul_scalar(self):
        check_op(lambda t: t * -2.5, X)

    def test_neg(self):
        check_op(lambda t: -t, X)

    def test_sub(self):
        check_op(lambda t: 5.0 - t, X)

    def test_pow(self):
        check_op(lambda t: t ** 3.0, X)

    def test_div(self):
        check_op(lambda t: t / 2.0, X)

    def test_rdiv(self):
        check_op(lambda t: 1.0 / t, X + 3.0)

    def test_tanh(self):
        check_op(lambda t: t.tanh(), X)

    def test_relu(self):
        check_op(lambda t: t.relu(), X + 0.01)

    def test_exp(self):
        check_op(lambda t: t.exp(), X)

    def test_log(self):
        check_op(lambda t: t.log(), np.abs(X) + 0.5)

    def test_softplus(self):
        check_op(lambda t: t.softplus(), X * 3.0)

    def test_abs(self):
        check_op(lambda t: t.abs(), X + 0.01)

    def test_clip_inside_and_outside(self):
        check_op(lambda t: t.clip(-0.5, 0.5), X)

    def test_chained_expression(self):
        check_op(lambda t: ((t * 2.0).tanh() + t.exp() * 0.1) ** 2.0, X)


class TestMatmulAndReductions:
    def test_matmul_left(self):
        w = RNG.normal(size=(3, 2))
        check_op(lambda t: t @ Tensor(w), X)

    def test_matmul_right(self):
        a = RNG.normal(size=(2, 4))
        check_op(lambda t: Tensor(a) @ t, X)

    def test_mean(self):
        check_op(lambda t: t.mean(), X)

    def test_sum_axis(self):
        check_op(lambda t: t.sum(axis=0), X)

    def test_mean_axis_keepdims(self):
        check_op(lambda t: t.mean(axis=1, keepdims=True) * 2.0, X)

    def test_broadcast_add(self):
        bias = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        t = Tensor(X.copy(), requires_grad=True)
        (t + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 4.0))
        np.testing.assert_allclose(t.grad, np.ones_like(X))

    def test_broadcast_mul_grad(self):
        scale = RNG.normal(size=(1, 3))

        def op(t):
            return t * Tensor(scale)

        check_op(op, X)


class TestMinimumConcat:
    def test_minimum_grad_routing(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_minimum_tie_splits(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        minimum(a, b).sum().backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(0.5)

    def test_concat_grads(self):
        a = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        out = concat([a, b], axis=-1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * 3.0 + t * 4.0).sum().backward()
        assert t.grad[0] == pytest.approx(7.0)

    def test_detach_stops_gradient(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t.detach() * 3.0).sum().backward()
        assert t.grad is None

    def test_backward_requires_scalar(self):
        t = Tensor(X.copy(), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * 2.0
        (a * a).sum().backward()  # d/dt (2t)^2 = 8t = 24
        assert t.grad[0] == pytest.approx(24.0)

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_pow_requires_scalar_exponent(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            t ** np.ones(2)

    @given(st.integers(1, 5), st.integers(1, 4))
    @settings(max_examples=20)
    def test_shapes_preserved(self, n, m):
        data = np.ones((n, m))
        t = Tensor(data, requires_grad=True)
        (t.tanh() * 2.0).sum().backward()
        assert t.grad.shape == (n, m)


class TestGaussianLogProb:
    def test_standard_normal_at_zero(self):
        x = Tensor(np.zeros((1, 1)))
        mean = Tensor(np.zeros((1, 1)))
        log_std = Tensor(np.zeros((1, 1)))
        lp = gaussian_log_prob(x, mean, log_std)
        assert lp.data[0] == pytest.approx(-0.5 * np.log(2 * np.pi))

    def test_matches_scipy(self):
        from scipy import stats

        x = RNG.normal(size=(5, 2))
        mean = RNG.normal(size=(5, 2))
        log_std = RNG.normal(size=(5, 2)) * 0.3
        lp = gaussian_log_prob(Tensor(x), Tensor(mean), Tensor(log_std))
        expected = stats.norm.logpdf(x, mean, np.exp(log_std)).sum(axis=1)
        np.testing.assert_allclose(lp.data, expected, atol=1e-10)

    def test_gradient_wrt_mean(self):
        x = RNG.normal(size=(3, 2))
        log_std = RNG.normal(size=(3, 2)) * 0.1

        def op(t):
            return gaussian_log_prob(Tensor(x), t, Tensor(log_std))

        check_op(op, RNG.normal(size=(3, 2)))
