"""The fused no-grad inference path: buffers, parity, FLOP truthfulness."""

import numpy as np
import pytest

from repro.rl.nn import autograd
from repro.rl.nn.flops import FlopCounter
from repro.rl.nn.layers import Mlp
from repro.rl.policy import SquashedGaussianPolicy

pytestmark = pytest.mark.batch


class TestMlpInferencePlan:
    def test_fused_forward_matches_plain_bitwise(self):
        rng = np.random.default_rng(3)
        mlp = Mlp((6, 16, 4), rng=rng)
        x = rng.standard_normal((8, 6))
        plan = mlp.inference_plan(8)
        assert np.array_equal(mlp.forward_np(x, plan=plan), mlp.forward_np(x))

    def test_plan_buffers_are_reused(self):
        mlp = Mlp((6, 16, 4))
        plan = mlp.inference_plan(8)
        x = np.zeros((8, 6))
        out1 = mlp.forward_np(x, plan=plan)
        out2 = mlp.forward_np(x, plan=plan)
        # Same pinned buffer both calls: no per-call output allocation.
        assert np.shares_memory(out1, out2)

    def test_oversized_batch_falls_back(self):
        mlp = Mlp((6, 16, 4))
        plan = mlp.inference_plan(4)
        x = np.zeros((9, 6))
        assert mlp.forward_np(x, plan=plan).shape == (9, 4)


class TestPolicyActBatch:
    def _policy(self):
        return SquashedGaussianPolicy(10, 2, hidden=(16, 16))

    def test_deterministic_matches_scalar_act(self):
        policy = self._policy()
        rng = np.random.default_rng(0)
        obs = rng.standard_normal((6, 10))
        plan = policy.inference_plan(6)
        batched = policy.act_batch(obs, deterministic=True, plan=plan)
        for i in range(6):
            scalar = policy.act(obs[i], deterministic=True)
            np.testing.assert_allclose(batched[i], scalar, atol=1e-12)

    def test_sampling_consumes_per_row_streams(self):
        """Row i draws exactly what a scalar episode with rng i would."""
        policy = self._policy()
        obs = np.random.default_rng(1).standard_normal((4, 10))
        batched = policy.act_batch(
            obs, rngs=[np.random.default_rng(100 + i) for i in range(4)]
        )
        for i in range(4):
            scalar = policy.act(obs[i], rng=np.random.default_rng(100 + i))
            np.testing.assert_allclose(batched[i], scalar, atol=1e-12)

    def test_requires_matrix_and_matching_rngs(self):
        policy = self._policy()
        with pytest.raises(ValueError):
            policy.act_batch(np.zeros(10))
        with pytest.raises(ValueError):
            policy.act_batch(
                np.zeros((3, 10)), rngs=[np.random.default_rng(0)]
            )

    def test_forward_np_fused_matches_plain(self):
        policy = self._policy()
        obs = np.random.default_rng(2).standard_normal((5, 10))
        plan = policy.inference_plan(5)
        mean_f, log_std_f = policy.forward_np(obs, plan=plan)
        mean_p, log_std_p = policy.forward_np(obs)
        assert np.array_equal(mean_f, mean_p)
        assert np.array_equal(log_std_f, log_std_p)


class TestFlopAccounting:
    def test_fused_path_counts_like_plain(self):
        """FlopSpanProbe stays truthful: both paths book identical work."""
        policy = SquashedGaussianPolicy(10, 2, hidden=(16, 16))
        obs = np.zeros((5, 10))
        plan = policy.inference_plan(5)

        plain = FlopCounter()
        plain.enable()
        try:
            policy.forward_np(obs)
        finally:
            plain.disable()

        fused = FlopCounter()
        fused.enable()
        try:
            policy.forward_np(obs, plan=plan)
        finally:
            fused.disable()

        assert fused.flops == plain.flops
        assert fused.bytes == plain.bytes
        assert fused.total_flops() > 0.0
