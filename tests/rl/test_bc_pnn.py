"""Tests for behaviour cloning and progressive neural networks."""

import numpy as np
import pytest

from repro.rl import BcConfig, BehaviorCloner, ProgressivePolicy, Sac, SacConfig
from repro.rl.nn.autograd import Tensor
from repro.rl.policy import SquashedGaussianPolicy


def expert(obs: np.ndarray) -> np.ndarray:
    """A smooth nonlinear expert mapping to clone."""
    return np.stack(
        [np.tanh(obs[:, 0] - obs[:, 1]), np.tanh(0.5 * obs[:, 2])], axis=1
    )


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(0)
    obs = rng.normal(size=(600, 3))
    return obs, expert(obs)


class TestBehaviorCloner:
    def test_loss_decreases(self, dataset):
        obs, actions = dataset
        policy = SquashedGaussianPolicy(3, 2, (32, 32), np.random.default_rng(1))
        cloner = BehaviorCloner(policy, BcConfig(epochs=15), np.random.default_rng(2))
        losses = cloner.fit(obs, actions)
        assert losses[-1] < losses[0] * 0.5

    def test_clones_expert(self, dataset):
        obs, actions = dataset
        policy = SquashedGaussianPolicy(3, 2, (32, 32), np.random.default_rng(1))
        cloner = BehaviorCloner(policy, BcConfig(epochs=40), np.random.default_rng(2))
        cloner.fit(obs, actions)
        assert cloner.evaluate(obs, actions) < 0.02

    def test_log_std_regularized(self, dataset):
        obs, actions = dataset
        policy = SquashedGaussianPolicy(3, 2, (32, 32), np.random.default_rng(1))
        config = BcConfig(epochs=30, target_log_std=-1.5)
        BehaviorCloner(policy, config, np.random.default_rng(2)).fit(obs, actions)
        _, log_std = policy.forward_np(obs[:50])
        assert np.mean(np.abs(log_std - (-1.5))) < 0.5

    def test_validation(self):
        policy = SquashedGaussianPolicy(3, 2, (8,))
        cloner = BehaviorCloner(policy)
        with pytest.raises(ValueError):
            cloner.fit(np.zeros((3, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            cloner.fit(np.zeros((0, 3)), np.zeros((0, 2)))


class TestProgressivePolicy:
    def make(self):
        base = SquashedGaussianPolicy(4, 2, (16, 16), np.random.default_rng(0))
        return base, ProgressivePolicy(base, np.random.default_rng(1))

    def test_base_frozen(self):
        base, pnn = self.make()
        assert all(not p.requires_grad for p in base.parameters())
        assert any(p.requires_grad for p in pnn.trainable_parameters())

    def test_forward_np_matches_autodiff(self):
        _, pnn = self.make()
        obs = np.random.default_rng(2).normal(size=(5, 4))
        mean_np, log_std_np = pnn.forward_np(obs)
        mean_t, log_std_t = pnn.distribution(Tensor(obs))
        np.testing.assert_allclose(mean_np, mean_t.data, atol=1e-12)
        np.testing.assert_allclose(log_std_np, log_std_t.data, atol=1e-12)

    def test_actions_bounded(self):
        _, pnn = self.make()
        obs = np.random.default_rng(3).normal(size=(20, 4))
        actions = pnn.act(obs, rng=np.random.default_rng(4))
        assert np.all(np.abs(actions) <= 1.0)

    def test_training_leaves_column1_unchanged(self):
        base, pnn = self.make()
        before = {k: v.copy() for k, v in base.state_dict().items()}

        from repro.rl.nn.optim import Adam

        opt = Adam(pnn.trainable_parameters(), lr=1e-2)
        obs = np.random.default_rng(5).normal(size=(16, 4))
        noise = np.random.default_rng(6).standard_normal((16, 2))
        for _ in range(5):
            _, logp = pnn.rsample(Tensor(obs), noise)
            loss = (logp ** 2.0).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()

        after = base.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_training_changes_column2(self):
        _, pnn = self.make()
        before = pnn.column2_layers[0].weight.data.copy()

        from repro.rl.nn.optim import Adam

        opt = Adam(pnn.trainable_parameters(), lr=1e-2)
        obs = np.random.default_rng(5).normal(size=(16, 4))
        noise = np.random.default_rng(6).standard_normal((16, 2))
        _, logp = pnn.rsample(Tensor(obs), noise)
        (logp ** 2.0).mean().backward()
        opt.step()
        assert not np.allclose(before, pnn.column2_layers[0].weight.data)

    def test_lateral_connections_used(self):
        """Zeroing column-1 activations must change column-2's output."""
        base, pnn = self.make()
        obs = np.random.default_rng(7).normal(size=(3, 4))
        mean_before, _ = pnn.forward_np(obs)
        for layer in base.trunk.layers:
            layer.weight.data[:] = 0.0
            layer.bias.data[:] = 0.0
        mean_after, _ = pnn.forward_np(obs)
        assert not np.allclose(mean_before, mean_after)

    def test_usable_as_sac_actor(self):
        base = SquashedGaussianPolicy(2, 1, (16, 16), np.random.default_rng(0))
        pnn = ProgressivePolicy(base, np.random.default_rng(1))
        sac = Sac(
            2, 1,
            SacConfig(hidden=(16, 16), batch_size=32, buffer_capacity=500),
            rng=np.random.default_rng(2),
            actor=pnn,
        )
        rng = np.random.default_rng(3)
        for _ in range(64):
            sac.observe(
                rng.normal(size=2), rng.uniform(-1, 1, 1), rng.normal(),
                rng.normal(size=2), False,
            )
        stats = sac.update()
        assert np.isfinite(stats["actor_loss"])
