"""Tests for the squashed-Gaussian policy, Q-network and replay buffer."""

import numpy as np
import pytest

from repro.rl.nn.autograd import Tensor
from repro.rl.policy import QNetwork, SquashedGaussianPolicy
from repro.rl.replay import ReplayBuffer


@pytest.fixture()
def policy():
    return SquashedGaussianPolicy(6, 2, hidden=(16, 16), rng=np.random.default_rng(0))


class TestSquashedGaussianPolicy:
    def test_actions_bounded(self, policy):
        rng = np.random.default_rng(1)
        obs = rng.normal(size=(50, 6))
        actions = policy.act(obs, rng=rng)
        assert actions.shape == (50, 2)
        assert np.all(np.abs(actions) <= 1.0)

    def test_single_obs_squeezed(self, policy):
        action = policy.act(np.zeros(6), deterministic=True)
        assert action.shape == (2,)

    def test_deterministic_repeatable(self, policy):
        obs = np.ones(6)
        a = policy.act(obs, deterministic=True)
        b = policy.act(obs, deterministic=True)
        np.testing.assert_array_equal(a, b)

    def test_stochastic_varies(self, policy):
        obs = np.ones(6)
        rng = np.random.default_rng(2)
        a = policy.act(obs, rng=rng)
        b = policy.act(obs, rng=rng)
        assert not np.allclose(a, b)

    def test_forward_np_matches_autodiff(self, policy):
        obs = np.random.default_rng(3).normal(size=(4, 6))
        mean_np, log_std_np = policy.forward_np(obs)
        mean_t, log_std_t = policy.distribution(Tensor(obs))
        np.testing.assert_allclose(mean_np, mean_t.data)
        np.testing.assert_allclose(log_std_np, log_std_t.data)

    def test_log_std_bounded(self, policy):
        obs = np.random.default_rng(4).normal(size=(10, 6)) * 100.0
        _, log_std = policy.forward_np(obs)
        assert np.all(log_std >= -5.0) and np.all(log_std <= 2.0)

    def test_rsample_logprob_matches_numpy_formula(self, policy):
        """The autodiff log-prob must agree with the numpy fast path."""
        obs = np.random.default_rng(5).normal(size=(8, 6))
        noise = np.random.default_rng(6).standard_normal((8, 2))
        action_t, logp_t = policy.rsample(Tensor(obs), noise)

        mean, log_std = policy.forward_np(obs)
        std = np.exp(log_std)
        pre = mean + std * noise
        z = (pre - mean) / std
        logp = np.sum(-0.5 * z * z - log_std - 0.5 * np.log(2 * np.pi), axis=-1)
        logp -= np.sum(
            2.0 * (np.log(2.0) - pre - np.logaddexp(0.0, -2.0 * pre)), axis=-1
        )
        np.testing.assert_allclose(logp_t.data, logp, atol=1e-10)
        np.testing.assert_allclose(action_t.data, np.tanh(pre), atol=1e-12)

    def test_sample_np_logprob_reasonable(self, policy):
        obs = np.zeros((100, 6))
        actions, logp = policy.sample_np(obs, np.random.default_rng(7))
        assert actions.shape == (100, 2)
        assert np.all(np.isfinite(logp))

    def test_rsample_gradients_reach_trunk(self, policy):
        obs = np.random.default_rng(8).normal(size=(4, 6))
        noise = np.random.default_rng(9).standard_normal((4, 2))
        _, logp = policy.rsample(Tensor(obs), noise)
        logp.mean().backward()
        grads = [p.grad for p in policy.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.any(g != 0) for g in grads)


class TestQNetwork:
    def test_output_shape(self):
        q = QNetwork(6, 2, hidden=(16, 16), rng=np.random.default_rng(0))
        obs = Tensor(np.zeros((5, 6)))
        act = Tensor(np.zeros((5, 2)))
        assert q(obs, act).shape == (5,)

    def test_forward_np_matches(self):
        q = QNetwork(6, 2, hidden=(16, 16), rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        obs = rng.normal(size=(5, 6))
        act = rng.normal(size=(5, 2))
        np.testing.assert_allclose(
            q.forward_np(obs, act), q(Tensor(obs), Tensor(act)).data
        )

    def test_depends_on_action(self):
        q = QNetwork(6, 2, hidden=(16, 16), rng=np.random.default_rng(0))
        obs = np.zeros((1, 6))
        a = q.forward_np(obs, np.full((1, 2), 0.9))
        b = q.forward_np(obs, np.full((1, 2), -0.9))
        assert not np.allclose(a, b)


class TestReplayBuffer:
    def make_filled(self, n, capacity=10):
        buffer = ReplayBuffer(capacity, obs_dim=3, action_dim=1)
        for i in range(n):
            buffer.add(
                np.full(3, i), np.array([i]), float(i), np.full(3, i + 1), False
            )
        return buffer

    def test_len_grows_and_caps(self):
        buffer = self.make_filled(4)
        assert len(buffer) == 4
        buffer = self.make_filled(25, capacity=10)
        assert len(buffer) == 10

    def test_fifo_eviction(self):
        buffer = self.make_filled(12, capacity=10)
        # Oldest entries (0, 1) evicted: rewards present are 2..11.
        assert set(buffer.rewards.tolist()) == set(float(i) for i in range(2, 12))

    def test_sample_shapes(self):
        buffer = self.make_filled(8)
        batch = buffer.sample(5, np.random.default_rng(0))
        assert batch["obs"].shape == (5, 3)
        assert batch["actions"].shape == (5, 1)
        assert batch["rewards"].shape == (5,)
        assert batch["dones"].shape == (5,)
        assert batch["obs"].dtype == np.float64

    def test_sample_empty_raises(self):
        buffer = ReplayBuffer(4, 3, 1)
        with pytest.raises(ValueError):
            buffer.sample(1, np.random.default_rng(0))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, 3, 1)

    def test_done_stored_as_float(self):
        buffer = ReplayBuffer(4, 3, 1)
        buffer.add(np.zeros(3), np.zeros(1), 0.0, np.zeros(3), True)
        assert buffer.dones[0] == 1.0
