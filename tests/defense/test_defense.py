"""Tests for the defense package: budget randomization, fine-tuning, PNN."""

import numpy as np
import pytest

from repro.agents.e2e import DrivingObservation, EndToEndAgent
from repro.core import (
    CameraAttackObservation,
    InjectionChannel,
    InjectionChannelConfig,
    LearnedAttacker,
)
from repro.defense import (
    BUDGET_GRID,
    BudgetRandomizedAttacker,
    FinetuneConfig,
    PnnTrainConfig,
    SimplexSwitchedAgent,
    adversarial_finetune,
    collect_adversarial_dataset,
    train_pnn_column,
)
from repro.defense.rescue import RescueConfig, RescueExpert
from repro.rl.bc import BcConfig
from repro.rl.pnn import ProgressivePolicy
from repro.rl.policy import SquashedGaussianPolicy
from repro.sim import Control


def make_attacker(budget=1.0):
    sensor = CameraAttackObservation()
    policy = SquashedGaussianPolicy(
        sensor.observation_dim, 1, (8,), np.random.default_rng(0)
    )
    return LearnedAttacker(
        policy,
        sensor,
        channel=InjectionChannel(InjectionChannelConfig(budget=budget)),
    )


def make_base_agent():
    encoder = DrivingObservation()
    policy = SquashedGaussianPolicy(
        encoder.observation_dim, 2, (16,), np.random.default_rng(1)
    )
    return EndToEndAgent(policy, observation=encoder)


class TestBudgetRandomizedAttacker:
    def test_grid_matches_paper(self):
        assert BUDGET_GRID == tuple(round(0.1 * i, 1) for i in range(11))

    def test_rho_one_always_nominal(self, quiet_world):
        wrapper = BudgetRandomizedAttacker(
            make_attacker(), rho=1.0, rng=np.random.default_rng(0)
        )
        for _ in range(5):
            wrapper.reset(quiet_world)
            assert wrapper.current_budget == 0.0
            assert wrapper.delta(quiet_world, Control()) == 0.0

    def test_rho_zero_always_attacks(self, quiet_world):
        wrapper = BudgetRandomizedAttacker(
            make_attacker(), rho=0.0, rng=np.random.default_rng(0)
        )
        for _ in range(5):
            wrapper.reset(quiet_world)
            assert wrapper.current_budget > 0.0

    def test_budget_drawn_from_grid(self, quiet_world):
        wrapper = BudgetRandomizedAttacker(
            make_attacker(), rho=0.0, rng=np.random.default_rng(0)
        )
        seen = set()
        for _ in range(30):
            wrapper.reset(quiet_world)
            seen.add(wrapper.current_budget)
        assert seen <= set(BUDGET_GRID)
        assert len(seen) > 3

    def test_nominal_ratio_approximates_rho(self, quiet_world):
        wrapper = BudgetRandomizedAttacker(
            make_attacker(), rho=0.5, rng=np.random.default_rng(0)
        )
        nominal = 0
        for _ in range(100):
            wrapper.reset(quiet_world)
            nominal += wrapper.current_budget == 0.0
        assert 30 <= nominal <= 70

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            BudgetRandomizedAttacker(make_attacker(), rho=1.5)


class TestCollectAdversarialDataset:
    def test_shapes_and_bounds(self):
        wrapper = BudgetRandomizedAttacker(
            make_attacker(), rho=0.5, rng=np.random.default_rng(0)
        )
        obs, actions = collect_adversarial_dataset(
            wrapper, 1, np.random.default_rng(0)
        )
        assert len(obs) == len(actions)
        assert actions.shape[1] == 2
        assert np.all(np.abs(actions) <= 1.0)

    def test_student_driven_collection(self):
        wrapper = BudgetRandomizedAttacker(
            make_attacker(), rho=0.0, rng=np.random.default_rng(0)
        )
        student = make_base_agent()
        obs, actions = collect_adversarial_dataset(
            wrapper, 1, np.random.default_rng(0), student=student
        )
        assert len(obs) > 0

    def test_rescue_expert_factory(self):
        wrapper = BudgetRandomizedAttacker(
            make_attacker(), rho=0.0, rng=np.random.default_rng(0)
        )
        obs, actions = collect_adversarial_dataset(
            wrapper,
            1,
            np.random.default_rng(0),
            expert_factory=lambda road: RescueExpert(
                road, RescueConfig(deviation_threshold=0.1)
            ),
        )
        # With a hair-trigger threshold under a full-budget attack, the
        # rescue reflex engages: full-brake labels appear.
        assert np.any(actions[:, 1] <= -0.99)


class TestAdversarialFinetune:
    def test_returns_new_agent_with_base_architecture(self):
        base = make_base_agent()
        config = FinetuneConfig(rho=0.5, episodes=2, bc=BcConfig(epochs=1))
        tuned = adversarial_finetune(base, make_attacker(), config)
        assert tuned is not base
        assert tuned.policy is not base.policy
        assert tuned.policy.hidden == base.policy.hidden
        assert "rho=0.50" in tuned.name

    def test_base_unchanged(self):
        base = make_base_agent()
        before = {k: v.copy() for k, v in base.policy.state_dict().items()}
        config = FinetuneConfig(rho=0.5, episodes=2, bc=BcConfig(epochs=1))
        adversarial_finetune(base, make_attacker(), config)
        after = base.policy.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_weights_actually_move(self):
        base = make_base_agent()
        config = FinetuneConfig(rho=0.5, episodes=2, bc=BcConfig(epochs=2))
        tuned = adversarial_finetune(base, make_attacker(), config)
        moved = any(
            not np.allclose(a, b)
            for a, b in zip(
                base.policy.state_dict().values(),
                tuned.policy.state_dict().values(),
            )
        )
        assert moved


class TestTrainPnnColumn:
    def test_returns_progressive_policy(self):
        base = make_base_agent()
        config = PnnTrainConfig(episodes=2, bc=BcConfig(epochs=1))
        column = train_pnn_column(base, make_attacker(), config)
        assert isinstance(column, ProgressivePolicy)
        assert column.obs_dim == base.policy.obs_dim

    def test_column1_frozen_copy_of_base(self):
        base = make_base_agent()
        config = PnnTrainConfig(episodes=2, bc=BcConfig(epochs=2))
        column = train_pnn_column(base, make_attacker(), config)
        base_state = base.policy.state_dict()
        col1_state = column.column1.state_dict()
        for key in base_state:
            np.testing.assert_array_equal(base_state[key], col1_state[key])
        assert all(not p.requires_grad for p in column.column1.parameters())


class TestSimplexSwitchedAgent:
    def make_switched(self, sigma=0.2):
        base = make_base_agent()
        column = ProgressivePolicy(base.policy, np.random.default_rng(2))
        original = make_base_agent()
        return SimplexSwitchedAgent(original, column, sigma=sigma)

    def test_routes_to_original_below_sigma(self, quiet_world):
        agent = self.make_switched(sigma=0.3)
        agent.inform_budget(0.2)
        assert agent.active is agent.original

    def test_routes_to_hardened_above_sigma(self, quiet_world):
        agent = self.make_switched(sigma=0.3)
        agent.inform_budget(0.5)
        assert agent.active is agent.hardened

    def test_boundary_inclusive(self):
        agent = self.make_switched(sigma=0.4)
        agent.inform_budget(0.4)
        assert agent.active is agent.original

    def test_estimate_budget_from_attacker(self):
        agent = self.make_switched(sigma=0.2)
        agent.estimate_budget_from(make_attacker(budget=0.7))
        assert agent.believed_budget == pytest.approx(0.7)
        assert agent.active is agent.hardened

    def test_act_matches_original_when_not_attacked(self, quiet_world):
        agent = self.make_switched(sigma=0.2)
        agent.inform_budget(0.0)
        agent.reset(quiet_world)
        switched_control = agent.act(quiet_world)
        agent.original.reset(quiet_world)
        direct_control = agent.original.act(quiet_world)
        assert switched_control.steer == pytest.approx(direct_control.steer)

    def test_invalid_sigma(self):
        base = make_base_agent()
        column = ProgressivePolicy(base.policy)
        with pytest.raises(ValueError):
            SimplexSwitchedAgent(make_base_agent(), column, sigma=-1.0)


class TestRescueExpert:
    def test_passthrough_when_on_path(self, quiet_world):
        expert = RescueExpert(quiet_world.road)
        expert.reset(quiet_world)
        control = expert.act(quiet_world)
        assert control.thrust > -0.9  # no emergency brake on path

    def test_brakes_when_deviating(self, quiet_world):
        expert = RescueExpert(
            quiet_world.road, RescueConfig(deviation_threshold=0.3)
        )
        expert.reset(quiet_world)
        expert.act(quiet_world)  # establish the plan
        quiet_world.ego.state.y += 1.5  # hijack-scale deviation
        control = expert.act(quiet_world)
        assert control.thrust == pytest.approx(-1.0)

    def test_deviation_measured_against_plan(self, quiet_world):
        expert = RescueExpert(quiet_world.road)
        expert.reset(quiet_world)
        assert expert.deviation(quiet_world) == 0.0  # no plan yet
        expert.act(quiet_world)
        assert expert.deviation(quiet_world) < 0.3
