"""Tests for the residual attack detector and detector-driven switcher."""

import numpy as np
import pytest

from repro.agents.e2e import DrivingObservation, EndToEndAgent
from repro.defense import (
    DetectorConfig,
    DetectorSwitchedAgent,
    ResidualAttackDetector,
)
from repro.rl.pnn import ProgressivePolicy
from repro.rl.policy import SquashedGaussianPolicy
from repro.sim import Control, make_world
from repro.telemetry.metrics import get_registry


def make_agents():
    encoder = DrivingObservation()
    policy = SquashedGaussianPolicy(
        encoder.observation_dim, 2, (16,), np.random.default_rng(0)
    )
    original = EndToEndAgent(policy, observation=encoder)
    column = ProgressivePolicy(policy, np.random.default_rng(1))
    return original, column


class TestResidualRecovery:
    def drive(self, deltas, command=0.1):
        """Issue a fixed command while injecting ``deltas``; return the
        recovered residuals."""
        world = make_world(rng=None)
        detector = ResidualAttackDetector()
        recovered = []
        for delta in deltas:
            detector.update(world)
            control = Control(steer=command, thrust=0.0)
            detector.observe_command(world, control)
            world.tick(control, steer_delta=delta)
            recovered.append(detector.residual(world))
        return recovered

    def test_exact_recovery_unclipped(self):
        deltas = [0.0, 0.0, 0.3, -0.5, 0.0, 0.7]
        recovered = self.drive(deltas, command=0.1)
        np.testing.assert_allclose(recovered, deltas, atol=1e-12)

    def test_clipping_limits_recovery(self):
        # command 0.8 + delta 0.8 clips to 1.0: only 0.2 is observable.
        recovered = self.drive([0.8], command=0.8)
        assert recovered[0] == pytest.approx(0.2, abs=1e-12)

    def test_no_history_returns_zero(self, quiet_world):
        detector = ResidualAttackDetector()
        assert detector.residual(quiet_world) == 0.0


class TestBudgetEstimate:
    def test_estimate_tracks_injection(self):
        world = make_world(rng=None)
        detector = ResidualAttackDetector(
            DetectorConfig(min_consecutive=1)
        )
        for step in range(20):
            if world.done:
                break
            detector.update(world)
            control = Control(steer=0.0, thrust=0.0)
            detector.observe_command(world, control)
            world.tick(control, steer_delta=0.4 if step >= 5 else 0.0)
        detector.update(world)
        assert detector.estimate == pytest.approx(0.4, abs=0.02)

    def test_noise_floor_suppresses_small_residuals(self):
        world = make_world(rng=None)
        detector = ResidualAttackDetector(DetectorConfig(noise_floor=0.05))
        for _ in range(10):
            detector.update(world)
            control = Control(steer=0.0, thrust=0.0)
            detector.observe_command(world, control)
            world.tick(control, steer_delta=0.01)
        assert detector.estimate == 0.0

    def test_min_consecutive_gates_single_spikes(self):
        world = make_world(rng=None)
        detector = ResidualAttackDetector(
            DetectorConfig(min_consecutive=3)
        )
        pattern = [0.0, 0.5, 0.0, 0.0, 0.5, 0.0]  # isolated spikes
        for delta in pattern:
            detector.update(world)
            control = Control(steer=0.0, thrust=0.0)
            detector.observe_command(world, control)
            world.tick(control, steer_delta=delta)
        detector.update(world)
        assert detector.estimate == 0.0

    def test_estimate_decays(self):
        world = make_world(rng=None)
        detector = ResidualAttackDetector(
            DetectorConfig(min_consecutive=1, decay=0.9)
        )
        detector.update(world)
        control = Control(steer=0.0, thrust=0.0)
        detector.observe_command(world, control)
        world.tick(control, steer_delta=0.5)
        first = detector.update(world)
        for _ in range(20):
            detector.observe_command(world, Control())
            if not world.done:
                world.tick(Control())
            later = detector.update(world)
        assert later < first

    def test_reset(self):
        detector = ResidualAttackDetector()
        detector._estimate = 0.7
        detector.reset()
        assert detector.estimate == 0.0


class TestDetectorTelemetry:
    def drive(self, detector, deltas):
        world = make_world(rng=None)
        for delta in deltas:
            detector.update(world)
            control = Control(steer=0.0, thrust=0.0)
            detector.observe_command(world, control)
            world.tick(control, steer_delta=delta)
        detector.update(world)

    def test_sustained_attack_counts_one_trip(self):
        registry = get_registry()
        before = registry.counter(
            "detector_trips_total", context="attacked"
        ).value
        detector = ResidualAttackDetector(
            DetectorConfig(min_consecutive=2), context="attacked"
        )
        self.drive(detector, [0.0, 0.0, 0.5, 0.5, 0.5, 0.5])
        after = registry.counter(
            "detector_trips_total", context="attacked"
        ).value
        assert after == before + 1

    def test_nominal_trip_counts_as_false_trip(self):
        registry = get_registry()
        before = registry.counter("detector_false_trips_total").value
        detector = ResidualAttackDetector(
            DetectorConfig(min_consecutive=1), context="nominal"
        )
        self.drive(detector, [0.0, 0.4, 0.4])
        assert registry.counter("detector_false_trips_total").value == before + 1

    def test_quiet_run_never_trips(self):
        registry = get_registry()
        before = registry.counter(
            "detector_trips_total", context="quiet-test"
        ).value
        detector = ResidualAttackDetector(context="quiet-test")
        self.drive(detector, [0.0] * 8)
        assert registry.counter(
            "detector_trips_total", context="quiet-test"
        ).value == before

    def test_latency_gauge_measures_onset_to_trip(self):
        registry = get_registry()
        detector = ResidualAttackDetector(
            DetectorConfig(min_consecutive=3), context="latency-test"
        )
        self.drive(detector, [0.0, 0.0, 0.5, 0.5, 0.5, 0.5])
        # Trip happens on the third above-floor residual of the bout.
        assert registry.gauge("detector_latency_ticks").value == 2.0


class TestDetectorSwitchedAgent:
    def test_starts_on_original(self, quiet_world):
        original, column = make_agents()
        agent = DetectorSwitchedAgent(original, column, sigma=0.2)
        agent.reset(quiet_world)
        agent.act(quiet_world)
        assert agent.simplex.active is agent.simplex.original
        assert agent.believed_budget == 0.0

    def test_switches_under_sustained_attack(self, quiet_world):
        original, column = make_agents()
        agent = DetectorSwitchedAgent(original, column, sigma=0.2)
        agent.reset(quiet_world)
        for _ in range(10):
            if quiet_world.done:
                break
            control = agent.act(quiet_world)
            quiet_world.tick(control, steer_delta=0.6)
        assert agent.believed_budget > 0.2
        assert agent.simplex.active is agent.simplex.hardened

    def test_no_switch_without_attack(self, quiet_world):
        original, column = make_agents()
        agent = DetectorSwitchedAgent(original, column, sigma=0.2)
        agent.reset(quiet_world)
        for _ in range(10):
            if quiet_world.done:
                break
            quiet_world.tick(agent.act(quiet_world))
        assert agent.believed_budget < 0.05
        assert agent.simplex.active is agent.simplex.original
